"""The value-set lattice underlying the dataflow engine.

An abstract register value is a finite set of concrete possibilities:

* :class:`Const` — a known 32-bit integer (``mov``/``mov32``
  immediates, folded arithmetic);
* :class:`Addr` — a link-time address ``label + offset`` (``adr``
  materialization, ``.word label`` literal-pool entries).

A :class:`ValueSet` is either TOP (statically unknown) or a finite set
of such values. Sets wider than :data:`MAX_WIDTH` collapse to TOP, so
the lattice has bounded height and every monotone fixpoint iteration
terminates. Join is set union (the may-analysis direction: a value is
in the set iff some path can produce it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Union

#: widest tracked value set; wider joins collapse to TOP
MAX_WIDTH = 8

_MASK = 0xFFFFFFFF


@dataclass(frozen=True)
class Const:
    """A known 32-bit constant."""

    value: int

    def __str__(self) -> str:
        return f"{self.value:#x}" if self.value > 9 else str(self.value)


@dataclass(frozen=True)
class Addr:
    """A link-time address: ``label + offset`` bytes."""

    label: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset:
            return f"&{self.label}{self.offset:+d}"
        return f"&{self.label}"


Value = Union[Const, Addr]


@dataclass(frozen=True)
class ValueSet:
    """TOP (``values is None``) or a finite set of abstract values."""

    values: Optional[FrozenSet[Value]] = None

    @property
    def is_top(self) -> bool:
        return self.values is None

    @property
    def is_bottom(self) -> bool:
        return self.values is not None and not self.values

    def join(self, other: "ValueSet") -> "ValueSet":
        if self.is_top or other.is_top:
            return TOP
        merged = self.values | other.values
        if len(merged) > MAX_WIDTH:
            return TOP
        return ValueSet(frozenset(merged))

    def leq(self, other: "ValueSet") -> bool:
        """Partial order: ``self`` is at least as precise as ``other``."""
        if other.is_top:
            return True
        if self.is_top:
            return False
        return self.values <= other.values

    def singleton(self) -> Optional[Value]:
        if self.values is not None and len(self.values) == 1:
            return next(iter(self.values))
        return None

    def singleton_label(self) -> Optional[str]:
        """The label name, iff this set is exactly one zero-offset Addr."""
        value = self.singleton()
        if isinstance(value, Addr) and value.offset == 0:
            return value.label
        return None

    def __str__(self) -> str:
        if self.is_top:
            return "?"
        return "{" + ", ".join(sorted(str(v) for v in self.values)) + "}"


TOP = ValueSet(None)
BOTTOM = ValueSet(frozenset())


def vs(*values: Value) -> ValueSet:
    """Literal constructor (collapses to TOP past the width cap)."""
    if len(values) > MAX_WIDTH:
        return TOP
    return ValueSet(frozenset(values))


def vs_const(value: int) -> ValueSet:
    return vs(Const(value & _MASK))


def vs_addr(label: str, offset: int = 0) -> ValueSet:
    return vs(Addr(label, offset))


def lift_unary(op: Callable[[Value], Optional[Value]],
               a: ValueSet) -> ValueSet:
    """Apply a concrete unary op (``Value -> Optional[Value]``) setwise;
    any unrepresentable result poisons the whole set to TOP."""
    if a.is_top:
        return TOP
    out = set()
    for x in a.values:
        r = op(x)
        if r is None:
            return TOP
        out.add(r)
        if len(out) > MAX_WIDTH:
            return TOP
    return ValueSet(frozenset(out))


def lift_binary(op: Callable[[Value, Value], Optional[Value]],
                a: ValueSet, b: ValueSet) -> ValueSet:
    """Apply a concrete binary op over the cross product, TOP-poisoning
    on unrepresentable results or width overflow."""
    if a.is_top or b.is_top:
        return TOP
    out = set()
    for x in a.values:
        for y in b.values:
            r = op(x, y)
            if r is None:
                return TOP
            out.add(r)
            if len(out) > MAX_WIDTH:
                return TOP
    return ValueSet(frozenset(out))


# -- register states --------------------------------------------------------

#: abstract register file: reg number -> ValueSet; a missing key is TOP
RegState = Dict[int, ValueSet]


def state_get(state: RegState, reg: int) -> ValueSet:
    return state.get(reg, TOP)


def state_set(state: RegState, reg: int, value: ValueSet) -> RegState:
    """Functional update (states are shared between worklist entries)."""
    new = dict(state)
    if value.is_top:
        new.pop(reg, None)
    else:
        new[reg] = value
    return new


def state_join(a: RegState, b: RegState) -> RegState:
    out: RegState = {}
    for reg in a.keys() & b.keys():
        joined = a[reg].join(b[reg])
        if not joined.is_top:
            out[reg] = joined
    return out


def state_clobber(state: RegState, regs: Iterable[int]) -> RegState:
    new = dict(state)
    for reg in regs:
        new.pop(reg, None)
    return new
