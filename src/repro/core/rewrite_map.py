"""Metadata shared between the offline phase and the Verifier.

The rewriter emits a :class:`RewriteMap` keyed by fresh labels; after
linking, :meth:`RewriteMap.bind` resolves every label to its final
address, producing a :class:`BoundRewriteMap` the Verifier's replay
consumes. The Verifier is assumed to possess the (public) rewritten
binary and this linking metadata — the same knowledge the paper's Vrf
derives from APP's binary (sections II-C, IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.asm.program import Image


@dataclass(frozen=True)
class CondSite:
    """A trampolined conditional (or silent-latch) branch.

    ``flavor``:

    * ``"taken"`` — non-loop / backward-latch trampolines: a CFLog
      record means the branch was taken (figures 5-6);
    * ``"not_taken"`` — forward-loop-exit trampolines: a record means
      the branch fell through into another loop iteration (figure 7);
    * ``"always"`` — an unconditional backward latch trampolined to
      break a silent cycle (see repro.core.silent): exactly one record
      per execution is mandatory.
    """

    site_label: str  # the branch instruction
    rec_label: str  # the recording instruction inside the stub/thunk
    taken_label: str  # original taken target
    cont_label: Optional[str] = None  # fall-through continuation (forward)
    flavor: str = "taken"


@dataclass(frozen=True)
class IndirectSite:
    """A trampolined indirect transfer (call, return, or computed jump)."""

    kind: str  # "call" | "return_pop" | "return_bx" | "ldr" | "bx"
    site_label: str  # replacement instruction in MTBDR
    rec_label: str  # recording instruction in MTBAR


@dataclass(frozen=True)
class LoopOptSite:
    """A loop-condition logging site (paper section IV-D)."""

    site_label: str  # the inserted svc instruction
    latch_label: str  # the (deterministic, untracked) latch branch
    counter_reg: int
    step: int
    bound: int
    cond: str


@dataclass(frozen=True)
class FixedLoopInfo:
    """A statically-deterministic loop: nothing is logged at runtime."""

    latch_label: str
    trip_count: int  # body executions per loop entry


@dataclass
class RewriteMap:
    """Everything the Verifier needs beyond the rewritten binary."""

    method: str = "rap-track"
    cond_sites: List[CondSite] = field(default_factory=list)
    indirect_sites: List[IndirectSite] = field(default_factory=list)
    loop_sites: List[LoopOptSite] = field(default_factory=list)
    fixed_loops: List[FixedLoopInfo] = field(default_factory=list)
    #: labels whose addresses may legally appear as indirect targets
    address_taken: Set[str] = field(default_factory=set)
    #: function entry labels (legal indirect-call targets)
    function_entries: Set[str] = field(default_factory=set)

    def bind(self, image: Image) -> "BoundRewriteMap":
        return BoundRewriteMap(self, image)


@dataclass(frozen=True)
class BoundCond:
    flavor: str
    rec_addr: int
    taken_addr: int
    cont_addr: Optional[int]


@dataclass(frozen=True)
class BoundIndirect:
    kind: str
    rec_addr: int


@dataclass(frozen=True)
class BoundLoop:
    rec_addr: int
    latch_addr: int
    counter_reg: int
    step: int
    bound: int
    cond: str


class BoundRewriteMap:
    """Rewrite metadata with all labels resolved to image addresses."""

    def __init__(self, rmap: RewriteMap, image: Image):
        self.method = rmap.method
        self.image = image
        self.cond_at: Dict[int, BoundCond] = {}
        self.indirect_at: Dict[int, BoundIndirect] = {}
        self.loop_at: Dict[int, BoundLoop] = {}
        self.loop_latches: Set[int] = set()
        self.fixed_trip_at: Dict[int, int] = {}
        for site in rmap.cond_sites:
            flavor = "not_taken" if site.cont_label else site.flavor
            self.cond_at[image.addr_of(site.site_label)] = BoundCond(
                flavor,
                image.addr_of(site.rec_label),
                image.addr_of(site.taken_label),
                image.addr_of(site.cont_label) if site.cont_label else None,
            )
        for ind in rmap.indirect_sites:
            self.indirect_at[image.addr_of(ind.site_label)] = BoundIndirect(
                ind.kind, image.addr_of(ind.rec_label)
            )
        for loop in rmap.loop_sites:
            bound = BoundLoop(
                image.addr_of(loop.site_label),
                image.addr_of(loop.latch_label),
                loop.counter_reg,
                loop.step,
                loop.bound,
                loop.cond,
            )
            self.loop_at[bound.rec_addr] = bound
            self.loop_latches.add(bound.latch_addr)
        for fixed in rmap.fixed_loops:
            self.fixed_trip_at[image.addr_of(fixed.latch_label)] = fixed.trip_count
        # policy sets: only real symbols qualify (equates are constants
        # like MMIO bases, never legal indirect-control targets)
        self.address_taken_addrs = {
            image.symbols[name] for name in rmap.address_taken
            if name in image.symbols
        }
        self.function_entry_addrs = {
            image.symbols[name] for name in rmap.function_entries
            if name in image.symbols
        }
