"""RAP-Track's primary contribution: the offline static analysis phase.

Pipeline (paper section IV):

1. :mod:`repro.core.cfg` builds a control flow graph over the assembled
   module and :mod:`repro.core.loops` finds natural loops via dominators.
2. :mod:`repro.core.classify` sorts every control transfer into the
   paper's categories — statically deterministic (untracked), simple
   loops eligible for the loop-condition optimization, and
   non-deterministic transfers that require MTBAR trampolines.
3. :mod:`repro.core.trampolines` + :mod:`repro.core.rewriter` emit the
   rewritten module: original code (minus moved branches) in MTBDR, the
   trampoline stubs in MTBAR, and the :class:`RewriteMap` metadata the
   Verifier uses for lossless path reconstruction.
4. :mod:`repro.core.pipeline` wires it together behind
   :class:`RapTrackConfig` ablation switches.
"""

from repro.core.cfg import CFG, BasicBlock, build_cfg
from repro.core.flat import FlatProgram
from repro.core.dominators import compute_dominators, dominates
from repro.core.loops import Loop, find_natural_loops
from repro.core.classify import (
    BranchClass,
    ClassifiedSite,
    classify_module,
)
from repro.core.rewrite_map import (
    CondSite,
    FixedLoopInfo,
    IndirectSite,
    LoopOptSite,
    RewriteMap,
)
from repro.core.rewriter import rewrite_for_rap_track
from repro.core.pipeline import RapTrackConfig, RapTrackResult, transform

__all__ = [
    "FlatProgram",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "compute_dominators",
    "dominates",
    "Loop",
    "find_natural_loops",
    "BranchClass",
    "ClassifiedSite",
    "classify_module",
    "RewriteMap",
    "CondSite",
    "IndirectSite",
    "LoopOptSite",
    "FixedLoopInfo",
    "rewrite_for_rap_track",
    "RapTrackConfig",
    "RapTrackResult",
    "transform",
]
