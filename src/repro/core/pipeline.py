"""End-to-end offline phase: classify -> rewrite -> metadata."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.asm.program import Module
from repro.core.classify import Classification, classify_module
from repro.core.rewrite_map import RewriteMap
from repro.core.rewriter import RewriterConfig, rewrite_for_rap_track


@dataclass
class RapTrackConfig:
    """All offline-phase switches in one place (ablation surface)."""

    nop_padding: bool = True  # MTB activation padding (section V-C)
    loop_opt: bool = True  # loop-condition logging (section IV-D)
    fixed_loops: bool = True  # statically-deterministic loop elision
    share_pop_stub: bool = True  # one MTBAR_POP_ADDR stub (figure 4)
    enable_dataflow: bool = True  # value-set devirtualization (section IV-C)

    def rewriter(self) -> RewriterConfig:
        return RewriterConfig(
            nop_padding=self.nop_padding,
            loop_opt=self.loop_opt,
            share_pop_stub=self.share_pop_stub,
        )


@dataclass
class RapTrackResult:
    """Output of the offline phase."""

    module: Module  # the rewritten (MTBDR + MTBAR) module
    rmap: RewriteMap
    classification: Classification
    site_counts: Dict[str, int] = field(default_factory=dict)


def transform(module: Module,
              config: Optional[RapTrackConfig] = None) -> RapTrackResult:
    """Run RAP-Track's static analysis and rewriting over a module."""
    config = config or RapTrackConfig()
    classification = classify_module(
        module,
        enable_loop_opt=config.loop_opt,
        enable_fixed_loops=config.fixed_loops,
        enable_dataflow=config.enable_dataflow,
    )
    rewritten, rmap = rewrite_for_rap_track(
        module, classification, config.rewriter()
    )
    counts = Counter(
        site.cls.name.lower() for site in classification.sites.values()
    )
    return RapTrackResult(rewritten, rmap, classification, dict(counts))
