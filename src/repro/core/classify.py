"""Branch classification (paper sections IV-C and IV-D).

Every control transfer in the attested application is sorted into:

* statically deterministic — direct jumps/calls, leaf returns through an
  unspilled LR, and fixed-iteration simple loops: left in MTBDR,
  untracked;
* simple variable loops — eligible for the loop-condition optimization:
  one Secure-World log of the loop condition replaces per-iteration
  records;
* non-deterministic — indirect calls/jumps, stack returns, conditional
  branches: moved into MTBAR via trampolines so the MTB records them.

With ``enable_dataflow`` the value-set analysis
(:mod:`repro.core.dataflow`) additionally *devirtualizes* indirect
transfers whose target set is a singleton — ``adr``/literal-pool
function pointers that never escape a constant — reclassifying them as
deterministic direct transfers (``DEVIRT_CALL``/``DEVIRT_JUMP``), and
refines leaf-return detection from the syntactic whole-function LR test
to a per-path LR-validity fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import TYPE_CHECKING, Dict, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.core.dataflow.analyses import DataflowFacts

from repro.asm.program import Module
from repro.core.cfg import CFG, build_cfg
from repro.core.flat import FlatProgram
from repro.core.loops import (
    Loop,
    SimpleLoopShape,
    analyse_simple_loop,
    find_natural_loops,
)
from repro.isa.instructions import InstrKind
from repro.isa.operands import Reg
from repro.isa.registers import LR


class BranchClass(Enum):
    """The paper's control-transfer categories."""

    DETERMINISTIC = auto()  # direct b / bl: untracked
    LEAF_RETURN = auto()  # bx lr with unspilled LR: untracked
    FIXED_LOOP_LATCH = auto()  # statically known trip count: untracked
    LOOP_OPT_LATCH = auto()  # simple loop, condition logged at entry
    COND_NONLOOP = auto()  # trampoline, record taken
    COND_BACKWARD_LATCH = auto()  # trampoline, record taken (per iteration)
    COND_FORWARD_EXIT = auto()  # trampoline, record not-taken (per iteration)
    UNCOND_LATCH = auto()  # silent-cycle breaker: record every execution
    LOGGED_CALL = auto()  # direct call closing a silent (recursion) cycle
    RETURN_POP = auto()  # pop {..., pc}
    INDIRECT_LDR = auto()  # ldr pc, [...]
    INDIRECT_CALL = auto()  # blx rs
    INDIRECT_BX = auto()  # bx rs (non-leaf / non-lr)
    DEVIRT_CALL = auto()  # blx rs with a proven single target: direct bl
    DEVIRT_JUMP = auto()  # bx rs / ldr pc with a proven single target


#: Classes that require an MTBAR trampoline.
TRAMPOLINED = frozenset({
    BranchClass.COND_NONLOOP,
    BranchClass.COND_BACKWARD_LATCH,
    BranchClass.COND_FORWARD_EXIT,
    BranchClass.UNCOND_LATCH,
    BranchClass.LOGGED_CALL,
    BranchClass.RETURN_POP,
    BranchClass.INDIRECT_LDR,
    BranchClass.INDIRECT_CALL,
    BranchClass.INDIRECT_BX,
})


@dataclass
class ClassifiedSite:
    """Classification of one control-transfer instruction (by index)."""

    index: int
    cls: BranchClass
    shape: Optional[SimpleLoopShape] = None
    loop: Optional[Loop] = None
    trip_count: Optional[int] = None  # for FIXED_LOOP_LATCH
    header_index: Optional[int] = None  # loop header instr index
    devirt_target: Optional[str] = None  # proven target (DEVIRT_*)


@dataclass
class Classification:
    """Full classification of a module's text section."""

    flat: FlatProgram
    cfg: CFG
    loops: List[Loop]
    sites: Dict[int, ClassifiedSite] = field(default_factory=dict)
    address_taken: Set[str] = field(default_factory=set)
    function_entry_labels: Set[str] = field(default_factory=set)
    #: value-set/LR facts when classified with ``enable_dataflow``
    dataflow: Optional["DataflowFacts"] = None

    def tracked_sites(self) -> List[ClassifiedSite]:
        return [s for s in self.sites.values() if s.cls in TRAMPOLINED]

    def devirtualized_sites(self) -> List[ClassifiedSite]:
        return [s for s in self.sites.values()
                if s.cls in (BranchClass.DEVIRT_CALL,
                             BranchClass.DEVIRT_JUMP)]


def classify_module(module: Module, *, enable_loop_opt: bool = True,
                    enable_fixed_loops: bool = True,
                    enable_dataflow: bool = True) -> Classification:
    """Run the full static classification over a module.

    ``enable_dataflow`` (default on, gated for rap-track through
    :class:`~repro.core.pipeline.RapTrackConfig`) runs the value-set/LR
    analyses first and uses their facts to devirtualize single-target
    indirect transfers and sharpen leaf-return detection; passing
    ``False`` restores the purely syntactic classification, so method
    comparisons isolate the logging mechanism rather than the front end.
    """
    flat = FlatProgram(module)
    cfg = build_cfg(flat)

    facts = None
    if enable_dataflow:
        from repro.core.dataflow.analyses import analyse_module

        facts = analyse_module(flat, cfg)

    loops: List[Loop] = []
    for start in flat.function_starts():
        entry_bid = cfg.block_of_index.get(start)
        if entry_bid is not None:
            loops.extend(find_natural_loops(cfg, entry_bid))

    result = Classification(flat, cfg, loops, dataflow=facts)
    result.address_taken = flat.address_taken_labels()
    for start in flat.function_starts():
        for label in flat.labels_at[start]:
            result.function_entry_labels.add(label)

    # innermost-out latch analysis so outer simple loops may treat inner
    # fixed loops as deterministic
    deterministic_cond_indices: Set[int] = set()
    latch_class: Dict[int, ClassifiedSite] = {}
    for loop in sorted(loops, key=lambda l: len(l.body)):
        site = _classify_loop_latch(
            cfg, loop, flat, deterministic_cond_indices,
            enable_loop_opt=enable_loop_opt,
            enable_fixed_loops=enable_fixed_loops,
        )
        if site is not None:
            latch_class[site.index] = site
            if site.cls in (BranchClass.FIXED_LOOP_LATCH,
                            BranchClass.LOOP_OPT_LATCH):
                deterministic_cond_indices.add(site.index)

    forward_exits = _single_forward_exits(cfg, loops, flat, latch_class)

    def proven_target(idx: int) -> Optional[str]:
        return facts.devirt_target(idx) if facts is not None else None

    for idx, instr in enumerate(flat.instrs):
        kind = instr.kind
        if kind is InstrKind.INDIRECT_CALL:
            target_label = proven_target(idx)
            if target_label is not None:
                result.sites[idx] = ClassifiedSite(
                    idx, BranchClass.DEVIRT_CALL, devirt_target=target_label)
            else:
                result.sites[idx] = ClassifiedSite(
                    idx, BranchClass.INDIRECT_CALL)
        elif kind is InstrKind.POP and instr.writes_pc():
            result.sites[idx] = ClassifiedSite(idx, BranchClass.RETURN_POP)
        elif kind is InstrKind.LOAD and instr.writes_pc():
            target_label = proven_target(idx)
            if target_label is not None:
                result.sites[idx] = ClassifiedSite(
                    idx, BranchClass.DEVIRT_JUMP, devirt_target=target_label)
            else:
                result.sites[idx] = ClassifiedSite(
                    idx, BranchClass.INDIRECT_LDR)
        elif kind is InstrKind.INDIRECT_BRANCH:
            (target,) = instr.operands
            is_lr = isinstance(target, Reg) and target.num == LR
            leaf = is_lr and (
                not flat.function_writes_lr(idx)
                or (facts is not None and facts.lr_valid_at(idx))
            )
            target_label = None if is_lr else proven_target(idx)
            if leaf:
                result.sites[idx] = ClassifiedSite(idx, BranchClass.LEAF_RETURN)
            elif target_label is not None:
                result.sites[idx] = ClassifiedSite(
                    idx, BranchClass.DEVIRT_JUMP, devirt_target=target_label)
            else:
                result.sites[idx] = ClassifiedSite(idx, BranchClass.INDIRECT_BX)
        elif (kind is InstrKind.COMPARE_BRANCH
              or (kind is InstrKind.BRANCH and instr.cond is not None)):
            if idx in latch_class:
                result.sites[idx] = latch_class[idx]
            else:
                result.sites[idx] = _classify_plain_cond(
                    cfg, loops, flat, idx, forward_exits)
        elif kind in (InstrKind.BRANCH, InstrKind.CALL):
            result.sites[idx] = ClassifiedSite(idx, BranchClass.DETERMINISTIC)

    # losslessness pass: break silent cycles (see repro.core.silent).
    # Devirtualized jumps add silent edges the CFG does not carry; when
    # a cycle through one has no other breakable branch the jump is
    # reverted to its trampolined class (logging every traversal) and
    # the analysis re-runs on the strictly smaller devirt set.
    from repro.core.silent import find_silent_latches

    loop_logged_headers = {
        site.header_index for site in result.sites.values()
        if site.cls is BranchClass.LOOP_OPT_LATCH
    }
    while True:
        latches, calls, reverts = find_silent_latches(
            cfg, result.sites, loop_logged_headers)
        if not reverts:
            break
        for idx in reverts:
            fallback = (BranchClass.INDIRECT_LDR
                        if flat.instrs[idx].kind is InstrKind.LOAD
                        else BranchClass.INDIRECT_BX)
            result.sites[idx] = ClassifiedSite(idx, fallback)
    for idx in latches:
        result.sites[idx] = ClassifiedSite(idx, BranchClass.UNCOND_LATCH)
    for idx in calls:
        prior = result.sites.get(idx)
        devirt = (prior.devirt_target
                  if prior is not None
                  and prior.cls is BranchClass.DEVIRT_CALL else None)
        result.sites[idx] = ClassifiedSite(
            idx, BranchClass.LOGGED_CALL, devirt_target=devirt)
    return result


def _classify_loop_latch(cfg: CFG, loop: Loop, flat: FlatProgram,
                         det_conds: Set[int], *, enable_loop_opt: bool,
                         enable_fixed_loops: bool) -> Optional[ClassifiedSite]:
    """Classify a loop's conditional latch (if it has exactly one)."""
    if len(loop.latches) != 1:
        return None
    latch_block = cfg.blocks[loop.latches[0]]
    latch_idx = latch_block.terminator_index
    latch = flat.instrs[latch_idx]
    is_cond = (latch.kind is InstrKind.COMPARE_BRANCH
               or (latch.kind is InstrKind.BRANCH and latch.cond is not None))
    if not is_cond:
        return None  # unconditional latch: handled via forward-exit sites

    header_index = cfg.blocks[loop.header].start
    shape = analyse_simple_loop(cfg, loop, ignore_cond_indices=det_conds)
    if shape is not None:
        if enable_fixed_loops and shape.init_const is not None:
            from repro.core.loops import trip_count

            trips = trip_count(shape, shape.init_const)
            return ClassifiedSite(
                latch_idx, BranchClass.FIXED_LOOP_LATCH, shape=shape,
                loop=loop, trip_count=trips, header_index=header_index,
            )
        if enable_loop_opt and _loop_opt_placement_ok(cfg, loop, flat):
            return ClassifiedSite(
                latch_idx, BranchClass.LOOP_OPT_LATCH, shape=shape,
                loop=loop, header_index=header_index,
            )
    return ClassifiedSite(
        latch_idx, BranchClass.COND_BACKWARD_LATCH, loop=loop,
        header_index=header_index,
    )


def _loop_opt_placement_ok(cfg: CFG, loop: Loop, flat: FlatProgram) -> bool:
    """The loop-condition svc can only be placed before the header when
    every entry reaches the header by *fall-through* (the latch's branch
    back to the header label must skip the svc, so a direct entry branch
    to the same label would bypass the instrumentation)."""
    header_block = cfg.blocks[loop.header]
    header_index = header_block.start
    outside_preds = [p for p in header_block.preds if p not in loop.body]
    if len(outside_preds) != 1:
        return False
    pred = cfg.blocks[outside_preds[0]]
    if pred.end != header_index:
        return False  # not the lexical predecessor
    # the predecessor must actually fall through (not jump) into the header
    term = flat.instrs[pred.terminator_index]
    if term.kind is InstrKind.BRANCH and term.cond is None:
        return False
    target = flat.target_index(term)
    if target == header_index:
        return False
    # no other instruction may branch directly to the header label
    for idx, instr in enumerate(flat.instrs):
        if idx == pred.terminator_index:
            continue
        if flat.target_index(instr) == header_index:
            bid = cfg.block_of_index[idx]
            if bid not in loop.body:
                return False
    return True


def _single_forward_exits(cfg: CFG, loops: List[Loop], flat: FlatProgram,
                          latch_class: Dict[int, ClassifiedSite]
                          ) -> Set[int]:
    """Conditional indices that get the figure-7 forward-exit trampoline.

    The not-taken-recording trampoline is applied only when a loop with
    unconditional latches has exactly *one* forward exit conditional:
    it then logs one record per iteration, matching the paper. With two
    or more exits, per-exit not-taken logging would append multiple
    records per iteration — strictly worse than trampolining the
    unconditional latch itself (which the silent-cycle pass then does),
    so multi-exit loops fall back to taken-recording conditionals.
    """
    candidates: Dict[int, List[int]] = {}  # loop header -> cond indices
    eligible: Dict[int, Loop] = {}
    for loop in loops:
        latches_conditional = any(
            _is_conditional(flat, cfg.blocks[latch].terminator_index)
            for latch in loop.latches
        )
        if not latches_conditional:
            eligible[loop.header] = loop

    for idx, instr in enumerate(flat.instrs):
        if idx in latch_class:
            continue
        if not (instr.kind is InstrKind.COMPARE_BRANCH
                or (instr.kind is InstrKind.BRANCH
                    and instr.cond is not None)):
            continue
        bid = cfg.block_of_index[idx]
        containing = [l for l in loops if bid in l.body]
        if not containing:
            continue
        innermost = min(containing, key=lambda l: len(l.body))
        if innermost.header not in eligible:
            continue
        target = flat.target_index(instr)
        target_bid = (cfg.block_of_index.get(target)
                      if target is not None else None)
        exits_loop = target_bid is None or target_bid not in innermost.body
        forward = target is not None and target > idx
        if exits_loop and forward:
            candidates.setdefault(innermost.header, []).append(idx)

    return {idxs[0] for idxs in candidates.values() if len(idxs) == 1}


def _classify_plain_cond(cfg: CFG, loops: List[Loop], flat: FlatProgram,
                         idx: int, forward_exits: Set[int]) -> ClassifiedSite:
    """A conditional that is not a simple/fixed latch: decide between the
    taken-recording trampoline and the forward-exit (not-taken) one."""
    bid = cfg.block_of_index[idx]
    containing = [l for l in loops if bid in l.body]
    if containing:
        innermost = min(containing, key=lambda l: len(l.body))
        if idx in forward_exits:
            return ClassifiedSite(idx, BranchClass.COND_FORWARD_EXIT,
                                  loop=innermost)
        target = flat.target_index(flat.instrs[idx])
        forward = target is not None and target > idx
        if not forward and cfg.blocks[bid].terminator_index == idx \
                and bid in innermost.latches:
            return ClassifiedSite(idx, BranchClass.COND_BACKWARD_LATCH,
                                  loop=innermost)
    return ClassifiedSite(idx, BranchClass.COND_NONLOOP)


def _is_conditional(flat: FlatProgram, idx: int) -> bool:
    instr = flat.instrs[idx]
    return (instr.kind is InstrKind.COMPARE_BRANCH
            or (instr.kind is InstrKind.BRANCH and instr.cond is not None))
