"""Static hygiene lint + rewrite certification (``python -m repro lint``).

Two layers share one report:

* **Certification** — every workload is transformed under each ablation
  configuration the benchmarks exercise and run through the translation
  validator (:mod:`repro.core.validate`). A lint pass is a proof that
  the offline phase is currently producing faithful rewrites for the
  whole suite.
* **Hygiene** — the dataflow analyses are pointed at the *original*
  programs: unreachable basic blocks, registers read before any
  definition in the entry function, dead definitions, and code that can
  fall off the end of the text section. These catch workload-authoring
  bugs that the simulator may mask (registers reset to zero, unreached
  garbage never executing).

The report is machine-readable (``--json``) so CI can gate on it; any
finding makes the command exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Module
from repro.core.cfg import build_cfg
from repro.core.dataflow.analyses import (
    ENTRY_DEF,
    analyse_liveness,
    analyse_reaching_defs,
    def_use,
)
from repro.core.flat import FlatProgram
from repro.core.pipeline import RapTrackConfig, transform
from repro.core.validate import validate_rewrite
from repro.isa.instructions import InstrKind
from repro.workloads import WORKLOADS, load_workload

#: configurations the lint certifies every workload under — the same
#: flag combinations the ablation benchmarks exercise
LINT_CONFIGS: List[Tuple[str, RapTrackConfig]] = [
    ("default", RapTrackConfig()),
    ("no-dataflow", RapTrackConfig(enable_dataflow=False)),
    ("no-loop-opt", RapTrackConfig(loop_opt=False)),
    ("no-fixed-loops", RapTrackConfig(fixed_loops=False)),
    ("no-padding", RapTrackConfig(nop_padding=False)),
    ("private-pop-stubs", RapTrackConfig(share_pop_stub=False)),
]

#: callee-saved registers: reading one before writing it in the entry
#: function means relying on the reset value, a portability hazard
_CALLEE_SAVED = frozenset(range(4, 12))


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    target: str  # "workload" or "workload@config"
    check: str  # kebab-case check id
    detail: str

    def __str__(self) -> str:
        return f"{self.target}: [{self.check}] {self.detail}"


@dataclass
class LintReport:
    """Aggregated outcome over the linted workloads."""

    findings: List[LintFinding] = field(default_factory=list)
    #: informational diagnostics that do not gate (``ok`` ignores them):
    #: facts worth surfacing — e.g. a recursion cycle, which is legal
    #: but makes the workload's path bounds uncertifiable
    notes: List[LintFinding] = field(default_factory=list)
    workloads: int = 0
    configs_validated: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def flag(self, target: str, check: str, detail: str) -> None:
        self.findings.append(LintFinding(target, check, detail))

    def note(self, target: str, check: str, detail: str) -> None:
        self.notes.append(LintFinding(target, check, detail))

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "workloads": self.workloads,
            "configs_validated": self.configs_validated,
            "findings": [
                {"target": f.target, "check": f.check, "detail": f.detail}
                for f in self.findings
            ],
            "notes": [
                {"target": f.target, "check": f.check, "detail": f.detail}
                for f in self.notes
            ],
        }


# -- hygiene ------------------------------------------------------------------

def _falls_through(instr) -> bool:
    """Can execution continue sequentially past this instruction?"""
    if instr.mnemonic == "bkpt":
        return False
    if not instr.writes_pc() or instr.cond is not None:
        return True
    # calls fall through (they come back); everything else that writes
    # the PC unconditionally diverts control for good
    return instr.kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL)


def lint_hygiene(module: Module, target: str,
                 report: Optional[LintReport] = None) -> LintReport:
    """Dataflow-driven hygiene checks on an original (unrewritten)
    module; findings are appended to (and returned in) ``report``."""
    report = report if report is not None else LintReport()
    flat = FlatProgram(module)
    if not len(flat):
        return report
    cfg = build_cfg(flat)

    # unreachable blocks: breadth-first over block successors from every
    # function start (the entry, call targets, address-taken labels)
    roots = {cfg.block_of_index[i] for i in flat.function_starts()
             if i in cfg.block_of_index}
    if 0 in cfg.block_of_index:
        roots.add(cfg.block_of_index[0])
    seen = set(roots)
    frontier = list(roots)
    while frontier:
        bid = frontier.pop()
        for succ in cfg.blocks[bid].succs:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    for block in cfg.blocks:
        if block.bid not in seen:
            labels = flat.labels_at[block.start]
            where = labels[0] if labels else f"index {block.start}"
            report.flag(target, "unreachable-block",
                        f"block at {where} is unreachable from any "
                        f"function entry")

    # use-before-def of callee-saved registers in the entry function
    reach = analyse_reaching_defs(flat, cfg)
    entry_idx = flat.label_index.get(module.entry, 0)
    lo, hi = flat.function_extent(entry_idx)
    for idx in range(lo, hi):
        fact = reach.get(idx)
        if fact is None:
            continue  # unreachable, reported above
        instr = flat.instrs[idx]
        if instr.kind in (InstrKind.PUSH, InstrKind.CALL,
                          InstrKind.INDIRECT_CALL):
            # prologue saves and the conservative "calls read
            # everything" model are idioms, not data reads
            continue
        _, uses = def_use(instr)
        for reg in sorted(uses & _CALLEE_SAVED):
            if fact.get(reg, frozenset({ENTRY_DEF})) == {ENTRY_DEF}:
                report.flag(target, "use-before-def",
                            f"r{reg} read at index {idx} "
                            f"({flat.instrs[idx]}) before any write in "
                            f"the entry function")

    # dead definitions: a MOVE/ALU result no path ever reads
    live_after = analyse_liveness(flat, cfg)
    for idx, instr in enumerate(flat.instrs):
        if instr.kind not in (InstrKind.MOVE, InstrKind.ALU):
            continue
        if idx not in live_after:
            continue  # unreachable
        defs, _ = def_use(instr)
        dead = sorted(d for d in defs if d not in live_after[idx])
        if defs and dead == sorted(defs):
            report.flag(target, "dead-def",
                        f"result of index {idx} ({instr}) is never read")

    # control must not run off the end of the section
    if _falls_through(flat.instrs[-1]):
        report.flag(target, "fall-through-end",
                    f"last instruction ({flat.instrs[-1]}) can fall "
                    f"through past the end of the text section")
    return report


# -- interprocedural hygiene --------------------------------------------------

def lint_callgraph(module: Module, target: str,
                   report: Optional[LintReport] = None) -> LintReport:
    """Call-graph-aware checks the per-function passes cannot see.

    * **unreachable-function** (gating): a function no call path from
      the workload entry point reaches — dead weight in the image and
      dead weight in every conservative indirect-target set;
    * **recursion-cycle** (note, non-gating): a cycle in the call
      graph. Recursion is legal, but it makes the shadow-stack depth
      and CFLog bounds uncertifiable, so the `BNDS1` admission screen
      degrades to signature-only for that image.
    """
    from repro.core.analysis.callgraph import build_call_graph
    from repro.core.classify import classify_module

    report = report if report is not None else LintReport()
    classification = classify_module(module)
    graph = build_call_graph(classification)
    reachable = graph.reachable()
    for name in sorted(set(graph.functions) - reachable):
        report.flag(target, "unreachable-function",
                    f"function {name} is unreachable from the entry "
                    f"point {graph.entry}")
    for cycle in graph.recursion_cycles():
        report.note(target, "recursion-cycle",
                    f"call cycle {' -> '.join(cycle + (cycle[0],))}: "
                    f"path bounds for this image are uncertifiable")
    return report


# -- certification ------------------------------------------------------------

def lint_workload(name: str, report: Optional[LintReport] = None,
                  configs: Optional[List[Tuple[str, RapTrackConfig]]] = None
                  ) -> LintReport:
    """Hygiene + rewrite certification for one workload."""
    report = report if report is not None else LintReport()
    configs = configs if configs is not None else LINT_CONFIGS
    workload = load_workload(name)
    lint_hygiene(workload.module(), name, report)
    lint_callgraph(workload.module(), name, report)
    for cfg_name, cfg in configs:
        result = transform(workload.module(), cfg)
        validation = validate_rewrite(workload.module(), result, cfg)
        report.configs_validated += 1
        for issue in validation.issues:
            report.flag(f"{name}@{cfg_name}", issue.check, issue.detail)
    report.workloads += 1
    return report


def lint_all(names: Optional[List[str]] = None,
             configs: Optional[List[Tuple[str, RapTrackConfig]]] = None
             ) -> LintReport:
    """Lint a set of workloads (default: the whole registry)."""
    report = LintReport()
    for name in sorted(names or WORKLOADS):
        lint_workload(name, report, configs)
    return report
