"""Human-facing views of the static analysis: CFG dot export and a
classification report (developer tooling around the offline phase)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.classify import BranchClass, Classification

#: graphviz fill colours by the terminator's class
_CLASS_COLORS = {
    BranchClass.DETERMINISTIC: "white",
    BranchClass.LEAF_RETURN: "white",
    BranchClass.FIXED_LOOP_LATCH: "palegreen",
    BranchClass.LOOP_OPT_LATCH: "lightgoldenrod",
    BranchClass.COND_NONLOOP: "lightblue",
    BranchClass.COND_BACKWARD_LATCH: "lightblue",
    BranchClass.COND_FORWARD_EXIT: "lightskyblue",
    BranchClass.UNCOND_LATCH: "plum",
    BranchClass.LOGGED_CALL: "plum",
    BranchClass.RETURN_POP: "salmon",
    BranchClass.INDIRECT_LDR: "salmon",
    BranchClass.INDIRECT_CALL: "salmon",
    BranchClass.INDIRECT_BX: "salmon",
}


def cfg_to_dot(classification: Classification,
               title: str = "cfg") -> str:
    """Render the classified CFG as graphviz dot text.

    Blocks are labelled with their instructions; terminators that the
    rewriter will touch are colour-coded by class (green: statically
    elided fixed loops; gold: loop-opt; blue: conditional trampolines;
    salmon: indirect trampolines; plum: silent-cycle breakers).
    """
    cfg = classification.cfg
    flat = classification.flat
    lines = [f'digraph "{title}" {{',
             "  node [shape=box, fontname=monospace, style=filled];"]
    for block in cfg.blocks:
        body = []
        for idx in range(block.start, block.end):
            labels = flat.labels_at[idx]
            for label in labels:
                body.append(f"{label}:")
            body.append(f"  {flat.instrs[idx]}")
        term_site = classification.sites.get(block.terminator_index)
        color = _CLASS_COLORS.get(
            term_site.cls if term_site else BranchClass.DETERMINISTIC,
            "white")
        text = "\\l".join(body) + "\\l"
        lines.append(f'  b{block.bid} [label="{text}", fillcolor={color}];')
    for block in cfg.blocks:
        for succ in block.succs:
            lines.append(f"  b{block.bid} -> b{succ};")
    for call_idx, target_idx in cfg.call_edges:
        src = cfg.block_of_index[call_idx]
        dst = cfg.block_of_index.get(target_idx)
        if dst is not None:
            lines.append(f"  b{src} -> b{dst} [style=dashed, color=gray];")
    lines.append("}")
    return "\n".join(lines)


def analysis_report(classification: Classification) -> str:
    """A textual summary of what the offline phase decided and why."""
    flat = classification.flat
    by_class: Dict[BranchClass, List[int]] = {}
    for idx, site in sorted(classification.sites.items()):
        by_class.setdefault(site.cls, []).append(idx)

    lines = ["=== RAP-Track offline analysis report ==="]
    lines.append(f"instructions: {len(flat)}")
    lines.append(f"functions:    {len(flat.function_starts())}")
    lines.append(f"loops:        {len(classification.loops)}")
    lines.append("")
    lines.append("control transfers by class:")
    for cls in BranchClass:
        indices = by_class.get(cls, [])
        if not indices:
            continue
        lines.append(f"  {cls.name:22s} {len(indices):4d}")
        for idx in indices[:6]:
            site = classification.sites[idx]
            extra = ""
            if site.trip_count is not None:
                extra = f"  (trip count {site.trip_count})"
            elif site.shape is not None:
                extra = (f"  (counter r{site.shape.counter_reg}, "
                         f"step {site.shape.step:+d}, "
                         f"bound {site.shape.bound})")
            lines.append(f"      @{idx:4d}: {flat.instrs[idx]}{extra}")
        if len(indices) > 6:
            lines.append(f"      ... and {len(indices) - 6} more")
    lines.append("")
    tracked = len(classification.tracked_sites())
    total = len(classification.sites)
    lines.append(f"tracked (trampolined) sites: {tracked} / {total} "
                 f"control transfers")
    lines.append(f"address-taken labels: "
                 f"{sorted(classification.address_taken) or 'none'}")
    return "\n".join(lines)
