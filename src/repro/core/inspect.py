"""Human-facing views of the static analysis: CFG dot export and a
classification report (developer tooling around the offline phase)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.classify import BranchClass, Classification

#: graphviz fill colours by the terminator's class
_CLASS_COLORS = {
    BranchClass.DETERMINISTIC: "white",
    BranchClass.LEAF_RETURN: "white",
    BranchClass.FIXED_LOOP_LATCH: "palegreen",
    BranchClass.LOOP_OPT_LATCH: "lightgoldenrod",
    BranchClass.COND_NONLOOP: "lightblue",
    BranchClass.COND_BACKWARD_LATCH: "lightblue",
    BranchClass.COND_FORWARD_EXIT: "lightskyblue",
    BranchClass.UNCOND_LATCH: "plum",
    BranchClass.LOGGED_CALL: "plum",
    BranchClass.RETURN_POP: "salmon",
    BranchClass.INDIRECT_LDR: "salmon",
    BranchClass.INDIRECT_CALL: "salmon",
    BranchClass.INDIRECT_BX: "salmon",
    # devirtualized transfers: formerly indirect, now proven direct
    BranchClass.DEVIRT_CALL: "aquamarine",
    BranchClass.DEVIRT_JUMP: "aquamarine",
}


def cfg_to_dot(classification: Classification,
               title: str = "cfg") -> str:
    """Render the classified CFG as graphviz dot text.

    Blocks are labelled with their instructions; terminators that the
    rewriter will touch are colour-coded by class (green: statically
    elided fixed loops; gold: loop-opt; blue: conditional trampolines;
    salmon: indirect trampolines; plum: silent-cycle breakers).
    """
    cfg = classification.cfg
    flat = classification.flat
    facts = classification.dataflow
    lines = [f'digraph "{title}" {{',
             "  node [shape=box, fontname=monospace, style=filled];"]
    for block in cfg.blocks:
        body = []
        if facts is not None:
            consts = facts.constant_registers(block.start)
            if consts:
                regs = ", ".join(f"r{r}={v}" for r, v in consts.items())
                body.append(f"; {regs}")
        has_devirt = False
        for idx in range(block.start, block.end):
            labels = flat.labels_at[idx]
            for label in labels:
                body.append(f"{label}:")
            body.append(f"  {flat.instrs[idx]}")
            site = classification.sites.get(idx)
            if site is not None and site.devirt_target is not None:
                body.append(f"    ; devirt -> {site.devirt_target}")
                has_devirt = True
        term_site = classification.sites.get(block.terminator_index)
        color = _CLASS_COLORS.get(
            term_site.cls if term_site else BranchClass.DETERMINISTIC,
            "white")
        if has_devirt and color == "white":
            color = "aquamarine"
        text = "\\l".join(body) + "\\l"
        lines.append(f'  b{block.bid} [label="{text}", fillcolor={color}];')
    for block in cfg.blocks:
        for succ in block.succs:
            lines.append(f"  b{block.bid} -> b{succ};")
    for call_idx, target_idx in cfg.call_edges:
        src = cfg.block_of_index[call_idx]
        dst = cfg.block_of_index.get(target_idx)
        if dst is not None:
            lines.append(f"  b{src} -> b{dst} [style=dashed, color=gray];")
    # proven edges of devirtualized jumps (absent from the CFG, which
    # treats computed jumps as exits)
    for site in classification.devirtualized_sites():
        if site.cls is not BranchClass.DEVIRT_JUMP:
            continue
        target_idx = flat.label_index.get(site.devirt_target)
        dst = cfg.block_of_index.get(target_idx) if target_idx is not None \
            else None
        if dst is not None:
            src = cfg.block_of_index[site.index]
            lines.append(f"  b{src} -> b{dst} "
                         f"[style=bold, color=aquamarine3];")
    lines.append("}")
    return "\n".join(lines)


def analysis_report(classification: Classification) -> str:
    """A textual summary of what the offline phase decided and why."""
    flat = classification.flat
    by_class: Dict[BranchClass, List[int]] = {}
    for idx, site in sorted(classification.sites.items()):
        by_class.setdefault(site.cls, []).append(idx)

    lines = ["=== RAP-Track offline analysis report ==="]
    lines.append(f"instructions: {len(flat)}")
    lines.append(f"functions:    {len(flat.function_starts())}")
    lines.append(f"loops:        {len(classification.loops)}")
    lines.append("")
    lines.append("control transfers by class:")
    for cls in BranchClass:
        indices = by_class.get(cls, [])
        if not indices:
            continue
        lines.append(f"  {cls.name:22s} {len(indices):4d}")
        for idx in indices[:6]:
            site = classification.sites[idx]
            extra = ""
            if site.trip_count is not None:
                extra = f"  (trip count {site.trip_count})"
            elif site.shape is not None:
                extra = (f"  (counter r{site.shape.counter_reg}, "
                         f"step {site.shape.step:+d}, "
                         f"bound {site.shape.bound})")
            lines.append(f"      @{idx:4d}: {flat.instrs[idx]}{extra}")
        if len(indices) > 6:
            lines.append(f"      ... and {len(indices) - 6} more")
    lines.append("")
    tracked = len(classification.tracked_sites())
    total = len(classification.sites)
    lines.append(f"tracked (trampolined) sites: {tracked} / {total} "
                 f"control transfers")
    lines.append(f"address-taken labels: "
                 f"{sorted(classification.address_taken) or 'none'}")

    facts = classification.dataflow
    if facts is not None:
        lines.append("")
        lines.append("dataflow facts:")
        lines.append(f"  fixpoint iterations: {facts.iterations}")
        lines.append(f"  LR-valid instructions: {len(facts.lr_valid)}")
        devirt = classification.devirtualized_sites()
        lines.append(f"  devirtualized sites: {len(devirt)}")
        for site in devirt:
            lines.append(f"      @{site.index:4d}: "
                         f"{flat.instrs[site.index]} "
                         f"-> {site.devirt_target}")
    return "\n".join(lines)


def precision_summary(classification: Classification,
                      baseline: Classification) -> str:
    """Classification-precision table: the dataflow-enabled result
    against the purely syntactic ``baseline`` of the same module."""
    by_class: Dict[BranchClass, int] = {}
    base_class: Dict[BranchClass, int] = {}
    for site in classification.sites.values():
        by_class[site.cls] = by_class.get(site.cls, 0) + 1
    for site in baseline.sites.values():
        base_class[site.cls] = base_class.get(site.cls, 0) + 1

    lines = ["=== classification precision (dataflow vs syntactic) ==="]
    lines.append(f"{'class':24s} {'syntactic':>10s} {'dataflow':>10s}")
    for cls in BranchClass:
        before = base_class.get(cls, 0)
        after = by_class.get(cls, 0)
        if not before and not after:
            continue
        lines.append(f"{cls.name:24s} {before:10d} {after:10d}")
    tracked_before = len(baseline.tracked_sites())
    tracked_after = len(classification.tracked_sites())
    devirt = len(classification.devirtualized_sites())
    lines.append("")
    lines.append(f"devirtualized sites:  {devirt}")
    lines.append(f"trampolined sites:    {tracked_before} -> "
                 f"{tracked_after} "
                 f"({tracked_before - tracked_after} avoided)")
    return "\n".join(lines)
