"""Silent-cycle analysis: the losslessness completion of section IV-C.

Taken-only logging of conditionals is lossless *only if* every cycle in
the control flow graph produces at least one CFLog record per
traversal. Otherwise two executions that differ in how many times they
went around an unlogged ("silent") cycle yield the same log, and the
Verifier cannot reconstruct the path — exactly the situation the
paper's loop trampolines (figures 6-7) exist to prevent for the common
loop shapes.

This module generalises that rule. It builds the subgraph of *silent*
edges (edges whose traversal is never evidenced in the CFLog), finds
its strongly connected components, and returns the branches that must
be additionally logged to break every silent cycle:

* unconditional backward branches (the while-loop latch case), and
* direct ``bl`` calls that close a cycle through a function —
  i.e. recursion, where a descent of arbitrary depth would otherwise
  leave no evidence until the base case.

The analysis is interprocedural: ``bl`` call edges are part of the
graph, and a call's fall-through (continuation) edge counts as *logged*
when every return path of the (statically known) callee is tracked,
because traversing it then always leaves at least the callee's return
record in the log.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.cfg import CFG
from repro.core.classify import BranchClass, ClassifiedSite
from repro.isa.instructions import InstrKind

#: classes whose dynamic occurrence always appends a CFLog record
_ALWAYS_LOGGED_RETURNS = frozenset({
    BranchClass.RETURN_POP,
    BranchClass.INDIRECT_BX,
})


def find_silent_latches(cfg: CFG, sites: Dict[int, ClassifiedSite],
                        loop_logged_headers: Set[int]
                        ) -> Tuple[List[int], List[int], List[int]]:
    """Branches to additionally log for losslessness.

    Returns ``(uncond_latch_indices, logged_call_indices,
    devirt_revert_indices)``. ``loop_logged_headers`` holds header
    instruction indices of loop-opt loops: entering such a header
    (other than via its back edge) passes the inserted svc and is
    therefore logged.

    Devirtualized transfers participate like their direct equivalents:
    a ``DEVIRT_CALL`` contributes an (unlogged) call edge and may be
    promoted to ``LOGGED_CALL``; a ``DEVIRT_JUMP`` contributes the
    silent edge its CFG-exit terminator does not carry. A component
    whose only cycles run through devirtualized jumps has no breakable
    branch — those jump indices come back in the third list so the
    classifier can revert them to their (always-logged) trampolined
    classes and re-run.
    """
    flat = cfg.flat
    silent: Dict[int, Set[int]] = {b.bid: set() for b in cfg.blocks}
    call_edges: Dict[int, Tuple[int, int]] = {}  # call idx -> (from, to)
    devirt_jump_edges: Dict[int, Tuple[int, int]] = {}  # idx -> (from, to)

    callee_all_returns_tracked: Dict[int, bool] = {}

    def returns_tracked(entry_idx: int) -> bool:
        """True if every return path of the function at ``entry_idx``
        is a tracked (logged) return."""
        if entry_idx in callee_all_returns_tracked:
            return callee_all_returns_tracked[entry_idx]
        start, end = flat.function_extent(entry_idx)
        tracked = True
        for idx in range(start, end):
            site = sites.get(idx)
            if site is None:
                continue
            if site.cls is BranchClass.LEAF_RETURN:
                tracked = False
                break
        callee_all_returns_tracked[entry_idx] = tracked
        return tracked

    for block in cfg.blocks:
        term_idx = block.terminator_index
        instr = flat.instrs[term_idx]
        site = sites.get(term_idx)
        cls = site.cls if site is not None else None
        taken_idx = flat.target_index(instr)
        taken_bid = (cfg.block_of_index.get(taken_idx)
                     if taken_idx is not None else None)

        # scan the whole block (blocks are single-entry): every call —
        # including mid-block ones — contributes a call edge, and a call
        # whose callee always logs its return makes any traversal
        # through this block leave a record
        interior_logged = False
        for idx in range(block.start, block.end):
            inner = flat.instrs[idx]
            inner_cls = sites.get(idx)
            if inner_cls is not None and inner_cls.cls in (
                    BranchClass.INDIRECT_CALL,):
                interior_logged = True
            callee_idx = None
            if inner.kind is InstrKind.CALL:
                callee_idx = flat.target_index(inner)
            elif (inner_cls is not None
                  and inner_cls.cls is BranchClass.DEVIRT_CALL):
                # a devirtualized call is a direct, *unlogged* call: it
                # behaves exactly like bl for cycle purposes
                callee_idx = flat.label_index.get(inner_cls.devirt_target)
            if callee_idx is not None:
                callee_bid = cfg.block_of_index.get(callee_idx)
                if callee_bid is not None:
                    silent[block.bid].add(callee_bid)
                    call_edges[idx] = (block.bid, callee_bid)
                if returns_tracked(callee_idx):
                    interior_logged = True

        for succ in block.succs:
            is_taken_edge = taken_bid is not None and succ == taken_bid
            if interior_logged:
                continue  # the block body always appends a record
            if cls in (BranchClass.COND_NONLOOP,
                       BranchClass.COND_BACKWARD_LATCH):
                if is_taken_edge:
                    continue  # taken is logged
            elif cls is BranchClass.COND_FORWARD_EXIT:
                if not is_taken_edge:
                    continue  # staying in the loop is logged
            elif cls in (BranchClass.FIXED_LOOP_LATCH,
                         BranchClass.LOOP_OPT_LATCH):
                if is_taken_edge:
                    continue  # self-resolving bounded back edge
            elif cls is BranchClass.INDIRECT_CALL:
                continue  # the call itself is always logged
            # the svc before a loop-opt header logs every entry edge
            # that is not the (excluded) latch back edge
            succ_start = cfg.blocks[succ].start
            if succ_start in loop_logged_headers and not is_taken_edge:
                continue
            silent[block.bid].add(succ)

        # a devirtualized jump becomes a plain (untracked) direct branch
        # whose edge the CFG records as an exit: restore it here
        if cls is BranchClass.DEVIRT_JUMP and not interior_logged:
            target_idx = flat.label_index.get(site.devirt_target)
            target_bid = (cfg.block_of_index.get(target_idx)
                          if target_idx is not None else None)
            if target_bid is not None:
                target_start = cfg.blocks[target_bid].start
                if target_start not in loop_logged_headers:
                    silent[block.bid].add(target_bid)
                    devirt_jump_edges[term_idx] = (block.bid, target_bid)

    latch_breaks: Set[int] = set()
    call_breaks: Set[int] = set()
    devirt_reverts: Set[int] = set()
    for component in _cyclic_sccs(silent):
        found = False
        for bid in component:
            block = cfg.blocks[bid]
            term_idx = block.terminator_index
            instr = flat.instrs[term_idx]
            site = sites.get(term_idx)
            cls = site.cls if site is not None else None
            breakable = site is None or cls is BranchClass.DETERMINISTIC
            if (instr.kind is InstrKind.BRANCH and instr.cond is None
                    and breakable):
                target = flat.target_index(instr)
                if (target is not None and target <= term_idx
                        and cfg.block_of_index.get(target) in component):
                    latch_breaks.add(term_idx)
                    found = True
            for idx in range(block.start, block.end):
                edge = call_edges.get(idx)
                if edge is not None and edge[1] in component:
                    call_breaks.add(idx)
                    found = True
        if not found:
            # last resort: un-devirtualize the jumps closing this
            # component, restoring their always-logged trampolines
            for idx, (src, dst) in devirt_jump_edges.items():
                if src in component and dst in component:
                    devirt_reverts.add(idx)
                    found = True
        if not found:
            raise ValueError(
                "silent cycle with no breakable branch "
                f"(blocks {sorted(component)})"
            )
    return sorted(latch_breaks), sorted(call_breaks), sorted(devirt_reverts)


def _cyclic_sccs(graph: Dict[int, Set[int]]) -> List[Set[int]]:
    """Strongly connected components that contain at least one cycle
    (size > 1, or a self-loop). Iterative Tarjan."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    out: List[Set[int]] = []

    for root in graph:
        if root in index_of:
            continue
        work: List[Tuple[int, object]] = [(root, iter(graph[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component: Set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or any(
                        m in graph[m] for m in component):
                    out.append(component)
    return out
