"""Translation validation for the RAP-Track rewriter.

The rewriter is trusted by every downstream component: the Verifier
replays against the *rewritten* binary, so a rewriting bug silently
becomes an attestation bug. This module certifies each rewritten module
against the original, independently of the rewriter's own bookkeeping:

* **Region disjointness** — after linking, the MTBDR (text) and MTBAR
  ranges (and every other section) must not overlap.
* **No residual non-determinism** — the rewritten text may contain no
  indirect call, pop-to-pc, load-to-pc, or non-LR register branch:
  everything non-deterministic must have moved into the MTBAR.
* **Trampoline observational equivalence** — a lockstep walk pairs
  every original instruction with its rewritten form and checks each
  trampoline re-issues exactly the original transfer (figure 3-7
  shapes), with the NOP activation padding the config promises.
* **Rewrite-map bijectivity** — every trampolined site in the
  classification has exactly one rewrite-map entry whose site label is
  bound to the rewritten instruction, and no entry is orphaned.
* **Devirtualization certificates** — every direct branch the rewriter
  emitted for a devirtualized site is re-proven from scratch against a
  fresh value-set analysis of the *original* program.

Issues are collected, not raised: a report with an empty issue list is
a certificate, and ``repro lint`` turns non-empty reports into CI
failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.asm import link
from repro.asm.program import Module, Space
from repro.cfa.services import SVC_LOG_LOOP
from repro.core.cfg import build_cfg
from repro.core.classify import BranchClass, Classification
from repro.core.flat import FlatProgram
from repro.core.pipeline import RapTrackConfig, RapTrackResult
from repro.core.rewrite_map import CondSite, IndirectSite
from repro.isa.instructions import Instr, InstrKind, make_instr
from repro.isa.operands import Imm, Label, Reg, RegList
from repro.isa.registers import LR, PC


@dataclass(frozen=True)
class ValidationIssue:
    """One certification failure."""

    check: str  # kebab-case check id, e.g. "stub-equivalence"
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass
class ValidationReport:
    """Outcome of validating one rewritten module."""

    issues: List[ValidationIssue] = field(default_factory=list)
    sites_checked: int = 0
    stubs_checked: int = 0
    devirt_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues

    def flag(self, check: str, detail: str) -> None:
        self.issues.append(ValidationIssue(check, detail))

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "sites_checked": self.sites_checked,
            "stubs_checked": self.stubs_checked,
            "devirt_checked": self.devirt_checked,
            "issues": [
                {"check": i.check, "detail": i.detail} for i in self.issues
            ],
        }


def _same_instr(a: Instr, b: Instr) -> bool:
    return (a.mnemonic == b.mnemonic and a.cond == b.cond
            and a.operands == b.operands)


def _fmt(instr: Instr) -> str:
    return str(instr)


class _ItemCursor:
    """Sequential reader over a section's (payload, labels) items."""

    def __init__(self, section):
        self.items = list(section.items)
        self.pos = 0

    def take(self) -> Optional[Tuple[object, Tuple[str, ...]]]:
        if self.pos >= len(self.items):
            return None
        item = self.items[self.pos]
        self.pos += 1
        return item.payload, tuple(item.labels)

    def exhausted_except_space(self) -> bool:
        return all(isinstance(item.payload, Space)
                   for item in self.items[self.pos:])


def validate_rewrite(original: Module, result: RapTrackResult,
                     config: Optional[RapTrackConfig] = None
                     ) -> ValidationReport:
    """Certify ``result`` as a faithful rewrite of ``original``."""
    config = config or RapTrackConfig()
    report = ValidationReport()
    classification = result.classification
    flat = classification.flat
    rewritten = result.module
    rmap = result.rmap

    try:
        image = link(rewritten)
    except Exception as exc:  # unlikable rewrite is its own finding
        report.flag("link", f"rewritten module fails to link: {exc}")
        return report

    _check_regions(report, image)
    _check_residual_indirection(report, image)
    _check_bindability(report, rmap, image)
    _lockstep_walk(report, flat, classification, rewritten, rmap,
                   image, config)
    _check_devirt_certificates(report, original, classification, config)
    return report


# -- global image checks ------------------------------------------------------

def _check_regions(report: ValidationReport, image) -> None:
    ranges = sorted(image.section_ranges.items(), key=lambda kv: kv[1][0])
    for (name_a, (lo_a, hi_a)), (name_b, (lo_b, _)) in zip(
            ranges, ranges[1:]):
        if hi_a > lo_b:
            report.flag("region-overlap",
                        f"sections {name_a} [{lo_a:#x},{hi_a:#x}) and "
                        f"{name_b} overlap")


def _check_residual_indirection(report: ValidationReport, image) -> None:
    lo, hi = image.section_ranges.get("text", (0, 0))
    for addr, instr in image.instr_at.items():
        if not (lo <= addr < hi):
            continue
        if instr.kind is InstrKind.INDIRECT_CALL:
            report.flag("residual-indirect",
                        f"indirect call left in text at {addr:#x}: "
                        f"{_fmt(instr)}")
        elif instr.kind is InstrKind.POP and instr.writes_pc():
            report.flag("residual-indirect",
                        f"pop-to-pc left in text at {addr:#x}")
        elif instr.kind is InstrKind.LOAD and instr.writes_pc():
            report.flag("residual-indirect",
                        f"load-to-pc left in text at {addr:#x}")
        elif instr.kind is InstrKind.INDIRECT_BRANCH:
            (target,) = instr.operands
            if not (isinstance(target, Reg) and target.num == LR):
                report.flag("residual-indirect",
                            f"register branch left in text at {addr:#x}: "
                            f"{_fmt(instr)}")


def _check_bindability(report: ValidationReport, rmap, image) -> None:
    text = image.section_ranges.get("text", (0, 0))
    mtbar = image.section_ranges.get("mtbar", (0, 0))

    def where(label: str) -> Optional[int]:
        try:
            return image.addr_of(label)
        except KeyError:
            report.flag("rmap-orphan", f"label {label!r} does not resolve")
            return None

    seen_sites = set()
    for site in rmap.indirect_sites:
        addr = where(site.site_label)
        if addr is not None and not text[0] <= addr < text[1]:
            report.flag("rmap-orphan",
                        f"site {site.site_label} outside text")
        if site.site_label in seen_sites:
            report.flag("rmap-bijectivity",
                        f"duplicate site label {site.site_label}")
        seen_sites.add(site.site_label)
        rec = where(site.rec_label)
        if rec is not None and not mtbar[0] <= rec < mtbar[1]:
            report.flag("rmap-orphan",
                        f"recording label {site.rec_label} outside mtbar")
    for cond in rmap.cond_sites:
        if cond.site_label in seen_sites:
            report.flag("rmap-bijectivity",
                        f"duplicate site label {cond.site_label}")
        seen_sites.add(cond.site_label)
        where(cond.site_label)
        where(cond.rec_label)
        where(cond.taken_label)
        if cond.cont_label:
            where(cond.cont_label)
    for loop in rmap.loop_sites:
        where(loop.site_label)
        where(loop.latch_label)
    for fixed in rmap.fixed_loops:
        where(fixed.latch_label)


# -- lockstep equivalence walk ------------------------------------------------

def _lockstep_walk(report: ValidationReport, flat: FlatProgram,
                   classification: Classification, rewritten: Module,
                   rmap, image, config: RapTrackConfig) -> None:
    cursor = _ItemCursor(rewritten.section("text"))
    indirects: Iterator[IndirectSite] = iter(rmap.indirect_sites)
    conds: Iterator[CondSite] = iter(rmap.cond_sites)
    loops = iter(rmap.loop_sites)

    svc_before = {}
    for site in classification.sites.values():
        if site.cls is BranchClass.LOOP_OPT_LATCH:
            svc_before.setdefault(site.header_index, []).append(site)

    def take(expect: str) -> Optional[Tuple[Instr, Tuple[str, ...]]]:
        item = cursor.take()
        if item is None:
            report.flag("text-truncated",
                        f"rewritten text ends early (expected {expect})")
            return None
        payload, labels = item
        if not isinstance(payload, Instr):
            report.flag("site-shape",
                        f"expected {expect}, found non-instruction item")
            return None
        return payload, labels

    def next_indirect(kind: str) -> Optional[IndirectSite]:
        entry = next(indirects, None)
        if entry is None:
            report.flag("rmap-bijectivity",
                        f"missing indirect-site entry (kind {kind})")
        elif entry.kind != kind:
            report.flag("rmap-bijectivity",
                        f"indirect-site kind {entry.kind!r}, "
                        f"classification says {kind!r}")
        return entry

    def check_stub(entry, branch: Instr, rec_expect: Instr,
                   exact: bool = True) -> None:
        """The text-side branch must enter an MTBAR stub whose recording
        instruction re-issues ``rec_expect``."""
        report.stubs_checked += 1
        target = branch.operands[-1]
        if not isinstance(target, Label):
            report.flag("stub-entry", f"{_fmt(branch)} is not a stub call")
            return
        try:
            stub_addr = image.addr_of(target.name)
            rec_addr = image.addr_of(entry.rec_label)
        except KeyError as exc:
            report.flag("stub-entry", str(exc))
            return
        lo, hi = image.section_ranges.get("mtbar", (0, 0))
        if not lo <= stub_addr < hi:
            report.flag("stub-entry",
                        f"stub {target.name} not in mtbar")
            return
        cur = stub_addr
        pad = 0
        while image.instr_at.get(cur) is not None and \
                image.instr_at[cur].mnemonic == "nop":
            pad += 1
            cur += image.instr_at[cur].size
        if config.nop_padding and pad < 1:
            report.flag("nop-padding",
                        f"stub {target.name} lacks activation padding")
        if not config.nop_padding and pad > 0:
            report.flag("nop-padding",
                        f"stub {target.name} padded with padding disabled")
        if cur != rec_addr:
            report.flag("stub-shape",
                        f"recording instruction of {target.name} is not "
                        f"the first non-nop instruction")
        rec = image.instr_at.get(rec_addr)
        if rec is None:
            report.flag("stub-shape",
                        f"no instruction at recording label "
                        f"{entry.rec_label}")
            return
        if exact and not _same_instr(rec, rec_expect):
            report.flag("stub-equivalence",
                        f"stub {target.name} re-issues {_fmt(rec)}, "
                        f"original transfer is {_fmt(rec_expect)}")

    for idx, instr in enumerate(flat.instrs):
        for loop_site in svc_before.get(idx, ()):
            got = take("loop-opt svc")
            if got is None:
                return
            payload, labels = got
            entry = next(loops, None)
            if not (payload.mnemonic == "svc"
                    and payload.operands == (Imm(SVC_LOG_LOOP),)):
                report.flag("site-shape",
                            f"loop-opt site emitted {_fmt(payload)}, "
                            f"expected svc #{SVC_LOG_LOOP}")
            elif entry is not None and entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"loop site label {entry.site_label} not "
                            f"bound to its svc")

        site = classification.sites.get(idx)
        cls = site.cls if site is not None else None
        report.sites_checked += site is not None

        if cls in (BranchClass.INDIRECT_CALL, BranchClass.LOGGED_CALL):
            got = take("stub call")
            if got is None:
                return
            payload, labels = got
            entry = next_indirect("call")
            if payload.mnemonic != "bl":
                report.flag("site-shape",
                            f"call site {idx} emitted {_fmt(payload)}")
                continue
            if entry is None:
                continue
            if entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"site label {entry.site_label} not on the "
                            f"rewritten call at index {idx}")
            if cls is BranchClass.INDIRECT_CALL:
                rec_expect = make_instr("bx", *instr.operands)
            elif site.devirt_target is not None:
                rec_expect = make_instr("b", Label(site.devirt_target))
            else:
                rec_expect = make_instr("b", instr.direct_target())
            check_stub(entry, payload, rec_expect)
        elif cls is BranchClass.RETURN_POP:
            (reglist,) = instr.operands
            remaining = reglist.without(PC)
            if len(remaining):
                got = take("partial pop")
                if got is None:
                    return
                payload, _ = got
                if not (payload.kind is InstrKind.POP
                        and payload.operands == (remaining,)):
                    report.flag("site-shape",
                                f"return site {idx}: expected "
                                f"pop {remaining}, got {_fmt(payload)}")
            got = take("return stub branch")
            if got is None:
                return
            payload, labels = got
            entry = next_indirect("return_pop")
            if payload.mnemonic != "b":
                report.flag("site-shape",
                            f"return site {idx} emitted {_fmt(payload)}")
                continue
            if entry is None:
                continue
            if entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"site label {entry.site_label} not on the "
                            f"return branch at index {idx}")
            check_stub(entry, payload, make_instr("pop", RegList((PC,))))
        elif cls in (BranchClass.INDIRECT_LDR, BranchClass.INDIRECT_BX):
            got = take("indirect stub branch")
            if got is None:
                return
            payload, labels = got
            if cls is BranchClass.INDIRECT_LDR:
                kind = "ldr"
            elif (isinstance(instr.operands[0], Reg)
                  and instr.operands[0].num == LR):
                kind = "return_bx"
            else:
                kind = "bx"
            entry = next_indirect(kind)
            if payload.mnemonic != "b":
                report.flag("site-shape",
                            f"indirect site {idx} emitted {_fmt(payload)}")
                continue
            if entry is None:
                continue
            if entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"site label {entry.site_label} not on the "
                            f"jump at index {idx}")
            check_stub(entry, payload, instr)
        elif cls in (BranchClass.DEVIRT_CALL, BranchClass.DEVIRT_JUMP):
            got = take("devirtualized transfer")
            if got is None:
                return
            payload, _ = got
            want = "bl" if cls is BranchClass.DEVIRT_CALL else "b"
            expect = make_instr(want, Label(site.devirt_target))
            if not _same_instr(payload, expect):
                report.flag("devirt-emission",
                            f"devirtualized site {idx} emitted "
                            f"{_fmt(payload)}, expected {_fmt(expect)}")
        elif cls in (BranchClass.COND_NONLOOP,
                     BranchClass.COND_BACKWARD_LATCH,
                     BranchClass.UNCOND_LATCH):
            got = take("trampolined conditional")
            if got is None:
                return
            payload, labels = got
            entry = next(conds, None)
            if entry is None:
                report.flag("rmap-bijectivity",
                            f"missing cond-site entry at index {idx}")
                continue
            if entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"cond site label {entry.site_label} not on "
                            f"the branch at index {idx}")
            if payload.cond != instr.cond or \
                    payload.kind is not instr.kind:
                report.flag("site-shape",
                            f"conditional at {idx} changed shape: "
                            f"{_fmt(instr)} -> {_fmt(payload)}")
            taken = instr.direct_target()
            if entry.taken_label != taken.name:
                report.flag("stub-equivalence",
                            f"cond site at {idx} records taken target "
                            f"{entry.taken_label}, original {taken.name}")
            check_stub(entry, payload, make_instr("b", taken))
        elif cls is BranchClass.COND_FORWARD_EXIT:
            got = take("forward-exit conditional")
            if got is None:
                return
            payload, labels = got
            entry = next(conds, None)
            if not _same_instr(payload, instr):
                report.flag("site-shape",
                            f"forward exit at {idx} altered: "
                            f"{_fmt(instr)} -> {_fmt(payload)}")
            got = take("fall-through stub branch")
            if got is None:
                return
            branch, _ = got
            if entry is None:
                report.flag("rmap-bijectivity",
                            f"missing cond-site entry at index {idx}")
                continue
            if entry.site_label not in labels:
                report.flag("rmap-bijectivity",
                            f"cond site label {entry.site_label} not on "
                            f"the branch at index {idx}")
            if entry.cont_label is None:
                report.flag("rmap-bijectivity",
                            f"forward exit at {idx} lacks a continuation")
                continue
            check_stub(entry, branch,
                       make_instr("b", Label(entry.cont_label)))
        else:
            got = take("verbatim instruction")
            if got is None:
                return
            payload, _ = got
            if not _same_instr(payload, instr):
                report.flag("verbatim-drift",
                            f"untracked instruction at {idx} altered: "
                            f"{_fmt(instr)} -> {_fmt(payload)}")

    if next(indirects, None) is not None:
        report.flag("rmap-bijectivity",
                    "indirect-site entries outnumber trampolined sites")
    if next(conds, None) is not None:
        report.flag("rmap-bijectivity",
                    "cond-site entries outnumber trampolined conditionals")
    if not cursor.exhausted_except_space():
        report.flag("text-surplus",
                    "rewritten text holds instructions past the last "
                    "original instruction")


# -- devirtualization certificates -------------------------------------------

def _check_devirt_certificates(report: ValidationReport, original: Module,
                               classification: Classification,
                               config: RapTrackConfig) -> None:
    devirt = classification.devirtualized_sites()
    demoted = [s for s in classification.sites.values()
               if s.cls is BranchClass.LOGGED_CALL
               and s.devirt_target is not None]
    if not devirt and not demoted:
        return
    if not config.enable_dataflow:
        report.flag("devirt-disabled",
                    "devirtualized sites present with dataflow disabled")
        return
    # independent re-derivation from the original module
    from repro.core.dataflow.analyses import analyse_module

    flat = FlatProgram(original)
    facts = analyse_module(flat, build_cfg(flat))
    for site in list(devirt) + demoted:
        report.devirt_checked += 1
        proven = facts.devirt_target(site.index)
        if proven != site.devirt_target:
            report.flag("devirt-certificate",
                        f"site {site.index} rewritten to "
                        f"{site.devirt_target!r} but re-analysis proves "
                        f"{proven!r}")
        elif site.devirt_target not in flat.label_index:
            report.flag("devirt-certificate",
                        f"devirtualized target {site.devirt_target!r} "
                        f"is not a code label")
