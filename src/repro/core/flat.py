"""Flat indexed view of a module's executable section."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.asm.program import DataWord, Module, Space
from repro.isa.instructions import Instr, InstrKind
from repro.isa.operands import Label
from repro.isa.registers import LR


class FlatProgram:
    """The text section as an indexed instruction list.

    Static analysis works on *indices* into this list (stable under
    re-linking); the rewriter turns index-based decisions back into a
    Module.
    """

    def __init__(self, module: Module, section: str = "text"):
        self.module = module
        self.section_name = section
        self.labels_at: List[Tuple[str, ...]] = []
        self.instrs: List[Instr] = []
        self.label_index: Dict[str, int] = {}
        sec = module.section(section)
        for item in sec.items:
            if isinstance(item.payload, Space) and item.payload.length == 0:
                # trailing label carrier; bind to one-past-the-end
                for label in item.labels:
                    self.label_index[label] = len(self.instrs)
                continue
            if not isinstance(item.payload, Instr):
                raise ValueError(
                    f"non-instruction payload in {section}: {item.payload!r}"
                )
            for label in item.labels:
                self.label_index[label] = len(self.instrs)
            self.labels_at.append(item.labels)
            self.instrs.append(item.payload)
        while len(self.labels_at) < len(self.instrs):
            self.labels_at.append(())

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def index_of(self, label: str) -> int:
        return self.label_index[label]

    def target_index(self, instr: Instr) -> Optional[int]:
        """Index of a direct branch target, if it lands in this section."""
        target = instr.direct_target()
        if target is None:
            return None
        return self.label_index.get(target.name)

    # -- whole-module facts -------------------------------------------------

    def address_taken_labels(self) -> Set[str]:
        """Labels whose address escapes into data or registers.

        These are the only legal targets of indirect control transfers
        (function pointers loaded with ``adr``, switch-table ``.word``
        entries), and form the indirect-branch policy the Verifier
        checks consumed CFLog targets against.
        """
        taken: Set[str] = set()
        for sec in self.module.sections.values():
            for item in sec.items:
                payload = item.payload
                if isinstance(payload, DataWord) and isinstance(payload.value, Label):
                    taken.add(payload.value.name)
                elif isinstance(payload, Instr) and payload.mnemonic == "adr":
                    operand = payload.operands[1]
                    if isinstance(operand, Label):
                        taken.add(operand.name)
        return taken

    def function_starts(self) -> List[int]:
        """Indices that start functions: the entry, every ``bl`` target,
        and every address-taken label that is called indirectly."""
        starts: Set[int] = set()
        entry = self.label_index.get(self.module.entry)
        if entry is not None:
            starts.add(entry)
        for instr in self.instrs:
            if instr.kind is InstrKind.CALL:
                idx = self.target_index(instr)
                if idx is not None:
                    starts.add(idx)
        for label in self.address_taken_labels():
            idx = self.label_index.get(label)
            if idx is not None:
                starts.add(idx)
        return sorted(starts)

    def function_extent(self, index: int) -> Tuple[int, int]:
        """(start, end) indices of the function containing ``index``.

        Functions are assumed contiguous and non-interleaved (our
        assembler layout discipline), delimited by the next function
        start.
        """
        starts = self.function_starts()
        start = 0
        for s in starts:
            if s <= index:
                start = s
            else:
                return (start, s)
        return (start, len(self.instrs))

    def function_writes_lr(self, index: int) -> bool:
        """Does the function containing ``index`` clobber LR before a
        ``bx lr`` could use it? True if it contains calls or explicit LR
        writes — the paper's test for whether a return is predictable."""
        start, end = self.function_extent(index)
        for instr in self.instrs[start:end]:
            kind = instr.kind
            if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
                return True
            if kind in (InstrKind.MOVE, InstrKind.ALU, InstrKind.LOAD):
                dest = instr.operands[0]
                if hasattr(dest, "num") and dest.num == LR:
                    return True
            if kind is InstrKind.POP:
                (reglist,) = instr.operands
                if LR in reglist:
                    return True
        return False
