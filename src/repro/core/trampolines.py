"""MTBAR trampoline stub synthesis (paper section IV-C, figures 3-7).

Each stub lives in the MTBAR region. Because the MTB needs a short
activation window after the DWT start event (non-instant activation),
stubs are padded with a leading NOP when ``nop_padding`` is on — exactly
the padding the paper reports adding (section V-C). The *recording
instruction* (the stub's transfer back out of MTBAR) is the one whose
``(src, dst)`` packet the MTB captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.asm.program import Section
from repro.isa.instructions import Instr, make_instr


@dataclass(frozen=True)
class Stub:
    """One emitted trampoline stub."""

    stub_label: str  # entry of the stub (branch target from MTBDR)
    rec_label: str  # the recording instruction inside the stub


def emit_stub(mtbar: Section, stub_label: str, rec_label: str,
              rec_instr: Instr, nop_padding: bool) -> Stub:
    """Append one stub to the MTBAR section.

    Layout: ``[nop]`` (optional activation padding) followed by the
    recording instruction that performs the original transfer.
    """
    if nop_padding:
        mtbar.add(make_instr("nop"), (stub_label,))
        mtbar.add(rec_instr, (rec_label,))
    else:
        if stub_label == rec_label:
            mtbar.add(rec_instr, (stub_label,))
        else:
            mtbar.add(rec_instr, (stub_label, rec_label))
    return Stub(stub_label, rec_label)


class LabelMint:
    """Fresh-label factory for rewriter-introduced symbols."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._next = 0

    def fresh(self, tag: str) -> str:
        label = f"__{self.prefix}_{tag}_{self._next}"
        self._next += 1
        return label
