"""Control flow graph construction over a flat program.

The CFG is intraprocedural: ``bl``/``blx`` are modelled as falling
through to their continuation (call edges are kept separately), so
dominator and natural-loop analysis stay within one function — which is
what the paper's loop trampolines and loop optimization reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.flat import FlatProgram
from repro.isa.instructions import Instr, InstrKind


def _is_block_terminator(instr: Instr) -> bool:
    kind = instr.kind
    if kind in (InstrKind.BRANCH, InstrKind.COMPARE_BRANCH,
                InstrKind.INDIRECT_BRANCH):
        return True
    if kind is InstrKind.POP and instr.writes_pc():
        return True
    if kind is InstrKind.LOAD and instr.writes_pc():
        return True
    if instr.mnemonic == "bkpt":
        return True
    return False


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions ``[start, end)``."""

    bid: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end

    @property
    def terminator_index(self) -> int:
        return self.end - 1


class CFG:
    """Blocks plus edge sets for one executable section."""

    def __init__(self, flat: FlatProgram):
        self.flat = flat
        self.blocks: List[BasicBlock] = []
        self.block_of_index: Dict[int, int] = {}
        self.call_edges: List[Tuple[int, int]] = []  # (call instr idx, target idx)
        self.exit_indices: Set[int] = set()  # returns / computed jumps / bkpt

    def block_at(self, index: int) -> BasicBlock:
        return self.blocks[self.block_of_index[index]]

    def successors(self, bid: int) -> List[int]:
        return self.blocks[bid].succs

    def predecessors(self, bid: int) -> List[int]:
        return self.blocks[bid].preds

    def reachable_from(self, bid: int) -> Set[int]:
        seen = {bid}
        stack = [bid]
        while stack:
            node = stack.pop()
            for succ in self.blocks[node].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def build_cfg(flat: FlatProgram) -> CFG:
    """Construct the intraprocedural CFG of the text section."""
    cfg = CFG(flat)
    count = len(flat)
    if count == 0:
        return cfg

    # leaders: entry, all labelled indices, direct targets, fall-throughs
    leaders: Set[int] = {0}
    leaders.update(i for i in flat.label_index.values() if i < count)
    for idx, instr in enumerate(flat.instrs):
        target = flat.target_index(instr)
        if target is not None and instr.kind is not InstrKind.CALL:
            leaders.add(target)
        if _is_block_terminator(instr) and idx + 1 < count:
            leaders.add(idx + 1)

    ordered = sorted(leaders)
    bounds = ordered + [count]
    for bid, (start, nxt) in enumerate(zip(ordered, bounds[1:])):
        end = start
        while end < nxt:
            end += 1
            if _is_block_terminator(flat.instrs[end - 1]):
                break
        block = BasicBlock(bid, start, end)
        cfg.blocks.append(block)
        for i in range(start, end):
            cfg.block_of_index[i] = bid
    # adjust: blocks may end early (terminator before next leader); the
    # leftover tail instructions are dead straight-line code, but we still
    # index them to their own synthetic blocks
    covered = set(cfg.block_of_index)
    tail_start = None
    extra: List[Tuple[int, int]] = []
    for i in range(count):
        if i in covered:
            if tail_start is not None:
                extra.append((tail_start, i))
                tail_start = None
        elif tail_start is None:
            tail_start = i
    if tail_start is not None:
        extra.append((tail_start, count))
    for start, end in extra:
        bid = len(cfg.blocks)
        cfg.blocks.append(BasicBlock(bid, start, end))
        for i in range(start, end):
            cfg.block_of_index[i] = bid

    # interprocedural call edges (any position within a block)
    for idx, instr in enumerate(flat.instrs):
        if instr.kind is InstrKind.CALL:
            target = flat.target_index(instr)
            if target is not None:
                cfg.call_edges.append((idx, target))

    # edges
    for block in cfg.blocks:
        term = flat.instrs[block.terminator_index]
        idx = block.terminator_index
        kind = term.kind

        def add_edge(to_index: int):
            to_bid = cfg.block_of_index[to_index]
            if to_bid not in block.succs:
                block.succs.append(to_bid)
                cfg.blocks[to_bid].preds.append(block.bid)

        if kind is InstrKind.BRANCH:
            target = flat.target_index(term)
            if target is not None and target < count:
                add_edge(target)
            if term.cond is not None and idx + 1 < count:
                add_edge(idx + 1)
        elif kind is InstrKind.COMPARE_BRANCH:
            target = flat.target_index(term)
            if target is not None and target < count:
                add_edge(target)
            if idx + 1 < count:
                add_edge(idx + 1)
        elif kind is InstrKind.CALL:
            if idx + 1 < count:
                add_edge(idx + 1)
        elif kind is InstrKind.INDIRECT_CALL:
            if idx + 1 < count:
                add_edge(idx + 1)
        elif kind is InstrKind.INDIRECT_BRANCH:
            # bx: return or computed jump; block exit either way
            cfg.exit_indices.add(idx)
        elif kind is InstrKind.POP and term.writes_pc():
            cfg.exit_indices.add(idx)
        elif kind is InstrKind.LOAD and term.writes_pc():
            cfg.exit_indices.add(idx)
            # switch dispatch: conservatively add edges to address-taken
            # labels inside this function (used only for policy display)
        elif term.mnemonic == "bkpt":
            cfg.exit_indices.add(idx)
        else:
            if idx + 1 < count:
                add_edge(idx + 1)
    return cfg
