"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.cfg import CFG


def compute_dominators(cfg: CFG, entry: int,
                       restrict: Optional[Set[int]] = None) -> Dict[int, Optional[int]]:
    """Immediate dominators of blocks reachable from ``entry``.

    ``restrict`` limits the node universe (used to keep the analysis
    within one function). Returns ``{block_id: idom_id}`` with the entry
    mapped to itself.
    """
    universe = cfg.reachable_from(entry)
    if restrict is not None:
        universe &= restrict

    # reverse postorder
    order: List[int] = []
    seen: Set[int] = set()

    def dfs(node: int):
        stack = [(node, iter(
            s for s in cfg.blocks[node].succs if s in universe))]
        seen.add(node)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(
                        s for s in cfg.blocks[succ].succs if s in universe)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    dfs(entry)
    rpo = list(reversed(order))
    rpo_index = {node: i for i, node in enumerate(rpo)}

    idom: Dict[int, Optional[int]] = {node: None for node in rpo}
    idom[entry] = entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            preds = [p for p in cfg.blocks[node].preds
                     if p in rpo_index and idom.get(p) is not None]
            if not preds:
                continue
            new_idom = preds[0]
            for pred in preds[1:]:
                new_idom = intersect(new_idom, pred)
            if idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominates(idom: Dict[int, Optional[int]], a: int, b: int) -> bool:
    """Does block ``a`` dominate block ``b`` under the given idom tree?"""
    node: Optional[int] = b
    while node is not None:
        if node == a:
            return True
        parent = idom.get(node)
        if parent == node:
            return node == a
        node = parent
    return False
