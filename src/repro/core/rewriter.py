"""The RAP-Track binary rewriter: MTBDR/MTBAR splitting + trampolines.

Takes a classified module and produces a new module whose ``text``
section is the MTBDR (original code with non-deterministic transfers
replaced by trampolines) and whose ``mtbar`` section holds the recording
stubs, together with the :class:`RewriteMap` the Verifier replays with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Module
from repro.core.classify import BranchClass, Classification, ClassifiedSite
from repro.core.rewrite_map import (
    CondSite,
    FixedLoopInfo,
    IndirectSite,
    LoopOptSite,
    RewriteMap,
)
from repro.core.trampolines import LabelMint, emit_stub
from repro.cfa.services import SVC_LOG_LOOP
from repro.isa.instructions import Instr, InstrKind, make_instr
from repro.isa.operands import Imm, Label, Reg, RegList
from repro.isa.registers import LR, PC


@dataclass
class RewriterConfig:
    """Ablation switches for the offline phase."""

    nop_padding: bool = True  # pad stubs for MTB activation latency
    loop_opt: bool = True  # kept for symmetry; applied at classification
    share_pop_stub: bool = True  # single MTBAR_POP_ADDR stub (figure 4)


def rewrite_for_rap_track(module: Module, classification: Classification,
                          config: Optional[RewriterConfig] = None
                          ) -> Tuple[Module, RewriteMap]:
    """Apply the RAP-Track transformation to ``module``."""
    config = config or RewriterConfig()
    flat = classification.flat
    out = Module(module.entry)
    out.equates = dict(module.equates)
    text = out.section("text")
    mtbar = out.section("mtbar")
    # copy non-text sections verbatim
    for name, section in module.sections.items():
        if name in ("text", "mtbar"):
            continue
        dest = out.section(name)
        for item in section.items:
            dest.add(item.payload, item.labels)

    mint = LabelMint("rt")
    rmap = RewriteMap(
        method="rap-track",
        address_taken=set(classification.address_taken),
        function_entries=set(classification.function_entry_labels),
    )

    # loop-opt condition logging: svc inserted immediately before the
    # loop header instruction (executed on entry, skipped by the latch)
    svc_before: Dict[int, List[ClassifiedSite]] = {}
    extra_labels: Dict[int, List[str]] = {}
    latch_labels: Dict[int, str] = {}
    pending: List[str] = []  # labels bound to the next emitted text item

    def emit(payload, labels=()):
        merged = tuple(pending) + tuple(labels)
        pending.clear()
        text.add(payload, merged)

    def label_for_index(index: int, tag: str) -> str:
        if index in latch_labels:
            return latch_labels[index]
        label = mint.fresh(tag)
        latch_labels[index] = label
        extra_labels.setdefault(index, []).append(label)
        return label

    for site in classification.sites.values():
        if site.cls is BranchClass.LOOP_OPT_LATCH:
            svc_before.setdefault(site.header_index, []).append(site)
        elif site.cls is BranchClass.FIXED_LOOP_LATCH:
            rmap.fixed_loops.append(FixedLoopInfo(
                latch_label=label_for_index(site.index, "fixed"),
                trip_count=site.trip_count,
            ))

    shared_pop: Optional[str] = None  # rec label of the shared POP stub

    def shared_pop_stub() -> str:
        nonlocal shared_pop
        if shared_pop is None:
            stub_label = "__rt_pop_stub"
            rec_label = "__rt_pop_rec"
            emit_stub(mtbar, stub_label, rec_label,
                      make_instr("pop", RegList((PC,))), config.nop_padding)
            shared_pop = rec_label
        return shared_pop

    # -- planning + emission in one pass ------------------------------------
    for idx, instr in enumerate(flat.instrs):
        labels: Tuple[str, ...] = tuple(flat.labels_at[idx]) + tuple(
            extra_labels.get(idx, ())
        )
        for loop_site in svc_before.get(idx, ()):  # insert loop-opt svc
            svc_label = mint.fresh("loop")
            latch_label = label_for_index(loop_site.index, "latch")
            shape = loop_site.shape
            rmap.loop_sites.append(LoopOptSite(
                site_label=svc_label,
                latch_label=latch_label,
                counter_reg=shape.counter_reg,
                step=shape.step,
                bound=shape.bound,
                cond=shape.cond,
            ))
            emit(make_instr("svc", Imm(SVC_LOG_LOOP)), (svc_label,))

        site = classification.sites.get(idx)
        cls = site.cls if site is not None else None

        if cls is BranchClass.INDIRECT_CALL:
            stub_label = mint.fresh("icall")
            rec_label = mint.fresh("icall_rec")
            site_label = mint.fresh("site")
            # figure 3: LR was already set by the direct call into the
            # MTBAR, so the stub completes the transfer with a plain BX
            (target_reg,) = instr.operands
            emit_stub(mtbar, stub_label, rec_label,
                      make_instr("bx", target_reg), config.nop_padding)
            emit(make_instr("bl", Label(stub_label)), labels + (site_label,))
            rmap.indirect_sites.append(
                IndirectSite("call", site_label, rec_label))
        elif cls is BranchClass.LOGGED_CALL:
            # a direct call that closes a silent (recursion) cycle: the
            # stub re-issues the jump so the MTB records each descent;
            # LR was already set by the bl into the MTBAR. A
            # devirtualized call demoted here jumps to its proven target.
            if site.devirt_target is not None:
                target = Label(site.devirt_target)
            else:
                target = instr.direct_target()
            stub_label = mint.fresh("rcall")
            rec_label = mint.fresh("rcall_rec")
            site_label = mint.fresh("site")
            emit_stub(mtbar, stub_label, rec_label,
                      make_instr("b", target), config.nop_padding)
            emit(make_instr("bl", Label(stub_label)), labels + (site_label,))
            rmap.indirect_sites.append(
                IndirectSite("call", site_label, rec_label))
        elif cls is BranchClass.RETURN_POP:
            (reglist,) = instr.operands
            remaining = reglist.without(PC)
            site_label = mint.fresh("site")
            if len(remaining):
                emit(make_instr("pop", remaining), labels)
                labels = ()
            if config.share_pop_stub:
                rec_label = shared_pop_stub()
                stub_target = "__rt_pop_stub"
            else:
                stub_target = mint.fresh("ret")
                rec_label = mint.fresh("ret_rec")
                emit_stub(mtbar, stub_target, rec_label,
                          make_instr("pop", RegList((PC,))), config.nop_padding)
            emit(make_instr("b", Label(stub_target)),
                 labels + (site_label,))
            rmap.indirect_sites.append(
                IndirectSite("return_pop", site_label, rec_label))
        elif cls in (BranchClass.INDIRECT_LDR, BranchClass.INDIRECT_BX):
            tag = "ildr" if cls is BranchClass.INDIRECT_LDR else "ibx"
            stub_label = mint.fresh(tag)
            rec_label = mint.fresh(f"{tag}_rec")
            site_label = mint.fresh("site")
            emit_stub(mtbar, stub_label, rec_label, instr, config.nop_padding)
            emit(make_instr("b", Label(stub_label)),
                 labels + (site_label,))
            if cls is BranchClass.INDIRECT_LDR:
                kind = "ldr"
            elif (isinstance(instr.operands[0], Reg)
                  and instr.operands[0].num == LR):
                # a non-leaf bx lr is a *return*: the Verifier must check
                # it against the shadow stack, not the jump-target policy
                kind = "return_bx"
            else:
                kind = "bx"
            rmap.indirect_sites.append(IndirectSite(kind, site_label, rec_label))
        elif cls in (BranchClass.DEVIRT_CALL, BranchClass.DEVIRT_JUMP):
            # value-set analysis proved a single target: replace the
            # indirect transfer with its direct equivalent — no
            # trampoline, no CFLog record, deterministic for the Verifier
            mnemonic = "bl" if cls is BranchClass.DEVIRT_CALL else "b"
            emit(make_instr(mnemonic, Label(site.devirt_target)), labels)
        elif cls in (BranchClass.COND_NONLOOP, BranchClass.COND_BACKWARD_LATCH,
                     BranchClass.UNCOND_LATCH):
            taken = instr.direct_target()
            stub_label = mint.fresh("cond")
            rec_label = mint.fresh("cond_rec")
            site_label = mint.fresh("site")
            emit_stub(mtbar, stub_label, rec_label,
                      make_instr("b", taken), config.nop_padding)
            redirected = _redirect_cond(instr, stub_label)
            emit(redirected, labels + (site_label,))
            flavor = ("always" if cls is BranchClass.UNCOND_LATCH
                      else "taken")
            rmap.cond_sites.append(CondSite(
                site_label=site_label, rec_label=rec_label,
                taken_label=taken.name, flavor=flavor,
            ))
        elif cls is BranchClass.COND_FORWARD_EXIT:
            taken = instr.direct_target()
            site_label = mint.fresh("site")
            emit(instr, labels + (site_label,))
            stub_label = mint.fresh("fwd")
            rec_label = mint.fresh("fwd_rec")
            cont_label = mint.fresh("cont")
            emit_stub(mtbar, stub_label, rec_label,
                      make_instr("b", Label(cont_label)), config.nop_padding)
            emit(make_instr("b", Label(stub_label)), ())
            pending.append(cont_label)
            rmap.cond_sites.append(CondSite(
                site_label=site_label, rec_label=rec_label,
                taken_label=taken.name, cont_label=cont_label,
            ))
        else:
            # deterministic / leaf return / fixed latch / loop-opt latch /
            # plain instruction: copied verbatim
            emit(instr, labels)

    # labels bound one-past-the-end of the text section
    trailing = [
        (lbl, i) for lbl, i in flat.label_index.items()
        if i == len(flat.instrs)
    ]
    if trailing:
        from repro.asm.program import Space

        text.add(Space(0), tuple(lbl for lbl, _ in trailing))
    return out, rmap


def _redirect_cond(instr: Instr, stub_label: str) -> Instr:
    """Point a conditional branch at its MTBAR stub."""
    if instr.kind is InstrKind.COMPARE_BRANCH:
        reg, _target = instr.operands
        return make_instr(instr.mnemonic, reg, Label(stub_label))
    return make_instr("b", Label(stub_label), cond=instr.cond)
