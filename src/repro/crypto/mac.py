"""Authenticated report MACs (symmetric HMAC-SHA256 setting)."""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable


def _fold(fields: Iterable[bytes]) -> bytes:
    out = []
    for field in fields:
        out.append(len(field).to_bytes(4, "little"))
        out.append(field)
    return b"".join(out)


def mac_report(key: bytes, *fields: bytes) -> bytes:
    """HMAC over length-prefixed report fields (prevents splicing)."""
    return hmac.new(key, _fold(fields), hashlib.sha256).digest()


def verify_mac(key: bytes, tag: bytes, *fields: bytes) -> bool:
    """Constant-time verification of a report MAC."""
    return hmac.compare_digest(tag, mac_report(key, *fields))
