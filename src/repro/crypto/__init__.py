"""Root-of-Trust cryptography: measurement hashing and report MACs."""

from repro.crypto.hashing import hash_bytes, measure_image
from repro.crypto.mac import mac_report, verify_mac

__all__ = ["measure_image", "hash_bytes", "mac_report", "verify_mac"]
