"""Code measurement (the H_MEM of the attestation report)."""

from __future__ import annotations

import hashlib

from repro.asm.program import Image


def hash_bytes(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).digest()


def measure_image(image: Image) -> bytes:
    """Measure the executable sections of a linked image.

    This is the CFA Engine's ``H_MEM``: a digest over the attested
    application's code (text + MTBAR), address-qualified so relocation
    or reordering changes the measurement.
    """
    return hash_bytes(image.code_bytes())
