"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the workload registry;
* ``run WORKLOAD [--method M]`` — one attested, verified execution;
* ``figures [--workloads ...] [--jobs N]`` — regenerate the paper's
  tables, optionally fanning the (workload × method) grid out across
  worker processes;
* ``profile WORKLOAD`` — cProfile one attested execution and print the
  simulator's hot spots (``--no-jit`` to profile the interpreter tier);
* ``offline WORKLOAD`` — show the rewriter's output (MTBDR/MTBAR);
* ``attack`` — the ROP detection demonstration;
* ``fleet [--devices N] [--workers W]`` — simulate a mixed fleet
  (honest, faulty, and hostile devices) against the fleet attestation
  service; exits 0 iff every session settles as expected.

``run`` and ``figures`` memoize the offline phase (classify/rewrite/
link) in a content-addressed on-disk cache — ``--cache-dir`` moves it,
``--no-cache`` disables it. Tables go to stdout; the progress/metrics
stream goes to stderr, so piping stdout captures clean tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asm import link
from repro.core.pipeline import transform
from repro.eval.cache import ArtifactCache, default_cache_dir
from repro.eval.parallel import evaluate_grid, ProgressEvent
from repro.eval.figures import (
    EVAL_WORKLOADS,
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
)
from repro.eval.runner import METHODS, run_method
from repro.workloads import WORKLOADS, load_workload


def _make_cache(args) -> Optional[ArtifactCache]:
    if getattr(args, "no_cache", False):
        return None
    return ArtifactCache(args.cache_dir or default_cache_dir())


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="offline-artifact cache location "
                             "(default: $REPRO_CACHE_DIR or ~/.cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="rebuild offline artifacts from scratch")


def _cmd_list(_args) -> int:
    print(f"{'workload':12s}  description")
    print(f"{'-' * 12}  {'-' * 50}")
    for name in sorted(WORKLOADS):
        print(f"{name:12s}  {load_workload(name).description}")
    return 0


def _cmd_run(args) -> int:
    run = run_method(args.workload, args.method, cache=_make_cache(args),
                     enable_jit=False if args.no_jit else None)
    print(f"workload:        {run.workload}")
    print(f"method:          {run.method}")
    print(f"cycles:          {run.cycles}")
    print(f"instructions:    {run.instructions}")
    print(f"code size:       {run.code_size} B")
    if run.method != "baseline":
        print(f"CFLog:           {run.cflog_records} records, "
              f"{run.cflog_bytes} B")
        print(f"partial reports: {run.partial_reports}")
        print(f"secure calls:    {run.gateway_calls}")
        print(f"verified:        {'OK' if run.verified else 'FAILED'}")
    return 0 if run.verified else 1


def _progress(event: ProgressEvent) -> None:
    if event.kind == "cell":
        print(f"[{event.done}/{event.total}] {event.spec} {event.detail}",
              file=sys.stderr)
    elif event.kind == "retry":
        print(f"[{event.done}/{event.total}] {event.detail}",
              file=sys.stderr)
    else:
        print(f"eval: {event.detail}", file=sys.stderr)


def _cmd_figures(args) -> int:
    names = args.workloads or list(EVAL_WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown workloads: {unknown}", file=sys.stderr)
        return 2
    runs, metrics = evaluate_grid(
        names,
        jobs=args.jobs,
        cache=_make_cache(args),
        timeout_s=args.cell_timeout,
        progress=_progress if not args.quiet else None,
    )
    if args.quiet:
        print(f"eval: {metrics.summary()}", file=sys.stderr)
    for title, fig in (
        ("Figure 1 — motivation", fig1_motivation),
        ("Figure 8 — runtime (CPU cycles)", fig8_runtime),
        ("Figure 9 — CFLog size (bytes)", fig9_cflog),
        ("Figure 10 — program memory (bytes)", fig10_code_size),
        ("Partial reports (4 KB MTB)", partial_report_table),
    ):
        print(format_table(fig(runs), title))
        print()
    return 0


def _cmd_offline(args) -> int:
    workload = load_workload(args.workload)
    result = transform(workload.module())
    image = link(result.module)
    print("site classification:")
    for cls, count in sorted(result.site_counts.items()):
        print(f"  {cls:24s} {count}")
    print(f"\nMTBDR ({image.section_size('text')} B):")
    print(image.disassemble("text"))
    print(f"\nMTBAR ({image.section_size('mtbar')} B):")
    print(image.disassemble("mtbar"))
    return 0


def _fmt_bound(value) -> str:
    return "unbounded" if value is None else str(value)


def _cmd_analyze_bounds(args) -> int:
    """`analyze --bounds`: the certification matrix. Every workload in
    the registry is certified under every bounded method, each `BNDS1`
    blob is signed and verified back, and the matrix is printed. Exits
    non-zero if any (workload, method) cell fails to certify."""
    from repro.core.analysis import (
        BOUNDED_METHODS,
        bounds_key,
        certify_workload,
        sign_certificate,
        verify_certificate,
    )
    from repro.core.analysis.certificate import DEFAULT_BOUNDS_SEED

    names = [args.workload] if args.workload else sorted(WORKLOADS)
    key = bounds_key(DEFAULT_BOUNDS_SEED)
    cache = _make_cache(args)
    failures = 0
    print(f"{'workload':12s} {'method':10s} {'depth':>9s} {'records':>9s} "
          f"{'bytes':>9s} {'exact':>5s}  recursion")
    print("-" * 70)
    for name in names:
        for method in BOUNDED_METHODS:
            try:
                cert = certify_workload(name, method, cache=cache,
                                        store_root=args.store_dir)
                blob = sign_certificate(cert, key)
                verify_certificate(blob, key)
            except Exception as exc:  # noqa: BLE001 - matrix must finish
                failures += 1
                print(f"{name:12s} {method:10s} FAILED: {exc}")
                continue
            cycles = ", ".join("/".join(c) for c in cert.recursion_cycles)
            print(f"{name:12s} {method:10s} "
                  f"{_fmt_bound(cert.max_stack_depth):>9s} "
                  f"{_fmt_bound(cert.max_log_records):>9s} "
                  f"{_fmt_bound(cert.max_log_bytes):>9s} "
                  f"{'yes' if cert.depth_exact else 'no':>5s}  "
                  f"{cycles or '-'}")
    print(f"\n{len(names)} workload(s) x {len(BOUNDED_METHODS)} methods, "
          f"{failures} failure(s)")
    return 1 if failures else 0


def _cmd_analyze_attack_surface(args) -> int:
    """`analyze --attack-surface`: mine gadgets, synthesize chains for
    one workload (default: the vulnerable demo image), and replay every
    chain against the real verifier — each one must be rejected with
    its predicted violation, or the command exits non-zero."""
    from repro.cfa.verifier import NaiveVerifier, Verifier
    from repro.core.analysis import mine_gadgets, synthesize_chains
    from repro.eval.runner import prepare
    from repro.tz.keystore import KeyStore

    name = args.workload or "vulnerable"
    cache = _make_cache(args)
    survived = 0
    for method in ("rap-track", "traces", "naive-mtb"):
        image, bound_map = prepare(load_workload(name), method, cache=cache)
        gadgets = mine_gadgets(image, bound_map, method)
        pads = [g for g in gadgets if g.is_pad]
        chains = synthesize_chains(image, bound_map, method)
        print(f"{name} / {method}: {len(gadgets)} gadgets "
              f"({len(pads)} landing pads), {len(chains)} chains")
        for gadget in pads:
            where = gadget.label or f"{gadget.entry:#x}"
            print(f"  pad  {where:24s} {gadget.steps} steps to halt "
                  f"at {gadget.terminator:#x}")
        key = KeyStore.provision().attestation_key
        verifier = (NaiveVerifier(image, key) if method == "naive-mtb"
                    else Verifier(image, bound_map, key))
        for chain in chains:
            outcome = verifier.replay(list(chain.records))
            kinds = {v.kind for v in outcome.violations}
            rejected = not outcome.ok and chain.expected_violation in kinds
            verdict = ("rejected" if rejected
                       else "SURVIVED REPLAY (analyzer bug)")
            if not rejected:
                survived += 1
            print(f"  chain {chain.name:23s} {len(chain.records)} records, "
                  f"expect {chain.expected_violation} -> {verdict}: "
                  f"{chain.description}")
    if survived:
        print(f"{survived} chain(s) not rejected", file=sys.stderr)
        return 1
    return 0


def _cmd_analyze(args) -> int:
    from repro.core.classify import classify_module
    from repro.core.inspect import (
        analysis_report,
        cfg_to_dot,
        precision_summary,
    )

    if args.bounds:
        return _cmd_analyze_bounds(args)
    if args.attack_surface:
        return _cmd_analyze_attack_surface(args)
    if not args.workload:
        print("analyze: a workload is required without --bounds/"
              "--attack-surface", file=sys.stderr)
        return 2
    workload = load_workload(args.workload)
    classification = classify_module(workload.module())
    if args.dot:
        print(cfg_to_dot(classification, title=args.workload))
        return 0
    print(analysis_report(classification))
    baseline = classify_module(workload.module(), enable_dataflow=False)
    print()
    print(precision_summary(classification, baseline))
    return 0


def _cmd_lint(args) -> int:
    import json

    from repro.core.lint import lint_all

    names = [args.workload] if args.workload else None
    report = lint_all(names)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(f"lint: {report.workloads} workloads, "
              f"{report.configs_validated} rewrites certified")
        for finding in report.findings:
            print(f"  {finding}")
        for note in report.notes:
            print(f"  note: {note}")
        if report.ok:
            print("lint: clean")
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run = run_method(args.workload, args.method, cache=_make_cache(args),
                     enable_jit=False if args.no_jit else None)
    profiler.disable()
    tier = "interpreter" if args.no_jit else "jit"
    print(f"profile: {args.workload} / {args.method} ({tier}) — "
          f"{run.cycles} cycles, {run.instructions} instructions",
          file=sys.stderr)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    return 0


def _cmd_attack(_args) -> int:
    from repro.cfa.engine import RapTrackEngine
    from repro.cfa.verifier import Verifier
    from repro.tz.keystore import KeyStore
    from repro.workloads import vulnerable
    from repro.workloads.base import make_mcu

    for attack in (False, True):
        workload = vulnerable.make()
        offline = transform(workload.module())
        image = link(offline.module)
        bound = offline.rmap.bind(image)
        mcu = make_mcu(image, workload)
        feed = (vulnerable.attack_feed(image) if attack
                else vulnerable.benign_feed())
        mcu.mmio.device("uart").set_feed(feed)
        keystore = KeyStore.provision()
        engine = RapTrackEngine(mcu, keystore, bound)
        result = engine.attest(b"cli-attack-demo")
        outcome = Verifier(image, bound, keystore.attestation_key).verify(
            result, b"cli-attack-demo")
        label = "attack" if attack else "benign"
        print(f"{label}: device status "
              f"{mcu.mmio.device('gpio').latches[0]:#x}, "
              f"verdict {'ACCEPTED' if outcome.ok else 'REJECTED'}")
        for violation in outcome.violations:
            print(f"  [{violation.kind}] {violation.detail}")
    return 0


def _cmd_fleet(args) -> int:
    from repro.cfa.fleet import (
        ChainFactory,
        FleetService,
        FleetSimulator,
        ShardedFleetService,
        build_fleet_specs,
    )

    if args.smoke_restart and not (args.shards and args.store):
        print("fleet: --smoke-restart requires --shards and --store",
              file=sys.stderr)
        return 2

    learn_rounds = getattr(args, "learn", 0)

    def make_service(resume: bool = False):
        if args.shards:
            return ShardedFleetService(
                shards=args.shards, store_dir=args.store,
                workers=args.workers, executor=args.executor,
                idle_timeout=5.0,
                replay_cache=not args.no_replay_cache, resume=resume,
                sampler=bool(learn_rounds))
        return FleetService(workers=args.workers, executor=args.executor,
                            idle_timeout=5.0,
                            replay_cache=not args.no_replay_cache,
                            sampler=bool(learn_rounds))

    specs = build_fleet_specs(
        args.devices, attack_fraction=args.attack_fraction,
        method=args.method, seed=args.seed)
    factory = ChainFactory(watermark=1024, cache=_make_cache(args))
    mismatches = []
    verdicts = {}
    if args.smoke_restart:
        # run half the fleet, hard-stop (no clean close), restart over
        # the same store, recover, then run the rest: the durability
        # smoke the CI gate greps
        half = len(specs) // 2
        service = make_service()
        report = FleetSimulator(specs[:half], seed=args.seed,
                                factory=factory).run(service)
        mismatches += report.mismatches
        verdicts.update(service.verdicts)
        for shard in service.shards:  # flush OS buffers, skip close()
            shard.store.close()
        service = make_service(resume=True)
        lost = {d: v for d, v in verdicts.items()
                if service.verdicts.get(d) != v}
        if lost:
            mismatches += [f"{d}: verdict lost across restart"
                           for d in sorted(lost)]
        print(f"fleet: restart recovered {service.recovered_verdicts} "
              f"verdicts", file=sys.stderr)
        report = FleetSimulator(specs[half:], seed=args.seed + 1,
                                factory=factory).run(service)
        mismatches += report.mismatches
        verdicts.update(service.verdicts)
        metrics = service.close()
    else:
        with make_service() as service:
            simulator = FleetSimulator(specs, seed=args.seed,
                                       factory=factory)
            report = simulator.run(service)
            mismatches += report.mismatches
            verdicts.update(service.verdicts)
            for round_no in range(1, learn_rounds + 1):
                from repro.cfa.fleet import learn_dictionaries
                m = service.metrics
                before_bps = (m.bytes_ingested / m.sessions_settled
                              if m.sessions_settled else 0.0)
                published = learn_dictionaries(service)
                acked = simulator.handshake(service)
                bytes0 = m.bytes_ingested
                sessions0 = m.sessions_settled
                report = simulator.run(service)
                mismatches += report.mismatches
                verdicts.update(service.verdicts)
                m = service.metrics
                after_bps = (
                    (m.bytes_ingested - bytes0)
                    / max(1, m.sessions_settled - sessions0))
                note = (f"{before_bps / after_bps:.2f}x smaller"
                        if after_bps and after_bps < before_bps
                        else "no gain")
                print(f"fleet: learn round {round_no}: "
                      f"{len(published)} dictionary epoch(s) live, "
                      f"{acked} device(s) acked, "
                      f"{before_bps:.0f} -> {after_bps:.0f} B/session "
                      f"({note})", file=sys.stderr)
            metrics = service.metrics
    print(f"fleet: {metrics.summary()}", file=sys.stderr)
    if args.store and args.shards:
        audited = _audit_store(args.store)
        if audited < 0:
            return 1
        print(f"fleet: evidence trail verified from disk "
              f"({audited} records)", file=sys.stderr)
    for line in mismatches:
        print(f"MISMATCH {line}")
    if mismatches:
        print(f"fleet: {len(mismatches)}/{len(specs)} sessions "
              f"settled against expectation")
        return 1
    print(f"fleet: all {len(specs)} sessions settled as expected")
    return 0


def _audit_store(store_dir, seed: bytes = b"fleet-vrf") -> int:
    """Strictly verify every evidence log under ``store_dir``; returns
    the record count, or -1 after printing what failed."""
    import pathlib

    from repro.cfa.fleet import EvidenceError, audit_key, \
        verify_evidence_trail

    key = audit_key(seed)
    total = 0
    logs = sorted(pathlib.Path(store_dir).glob("evidence-*.log"))
    if not logs:
        print(f"audit: no evidence logs under {store_dir}")
        return -1
    for path in logs:
        try:
            total += len(verify_evidence_trail(path, key))
        except EvidenceError as exc:
            print(f"audit: {path.name}: FAILED: {exc}")
            return -1
    return total


def _cmd_audit(args) -> int:
    """Exit codes: 0 = every chain verified; 1 = missing logs or any
    integrity failure (torn frames, bad MACs, broken chains)."""
    import json
    import pathlib
    from collections import Counter

    from repro.cfa.fleet import EvidenceError, audit_key, \
        verify_evidence_trail
    from repro.cfa.policy import STATE_NAMES

    result = {
        "ok": False, "store": str(args.store), "logs": [],
        "records": 0, "session_records": 0, "policy_records": 0,
        "devices": 0, "accepted": 0, "rejected": 0, "cache_hits": 0,
        "policy_states": {}, "error": None,
    }

    def emit(code: int) -> int:
        if args.json:
            try:
                print(json.dumps(result, indent=2, sort_keys=True))
            except BrokenPipeError:  # |head closed the pipe; exit quietly
                sys.stderr.close()
        elif result["error"] is not None:
            print(f"audit: FAILED: {result['error']}", file=sys.stderr)
        else:
            states = ", ".join(
                f"{count} {name}" for name, count
                in sorted(result["policy_states"].items()))
            print(f"audit: {result['records']} records across "
                  f"{result['devices']} devices OK "
                  f"({result['accepted']} accepted, "
                  f"{result['rejected']} rejected, "
                  f"{result['cache_hits']} cache-hit, "
                  f"{result['policy_records']} policy"
                  + (f"; states: {states}" if states else "") + ")")
        return code

    key = audit_key(b"fleet-vrf")
    store_dir = pathlib.Path(args.store)
    logs = sorted(store_dir.glob("evidence-*.log"))
    if not logs and (store_dir / "evidence.log").exists():
        logs = [store_dir / "evidence.log"]
    if not logs:
        result["error"] = f"no evidence logs under {args.store}"
        return emit(1)
    devices = set()
    last_state: dict = {}
    for path in logs:
        try:
            records = verify_evidence_trail(path, key)
        except EvidenceError as exc:
            result["error"] = f"{path.name}: {exc}"
            return emit(1)
        result["logs"].append({"name": path.name,
                               "records": len(records)})
        for record in records:
            devices.add(record.device_id)
            result["records"] += 1
            if getattr(record, "is_policy", False):
                result["policy_records"] += 1
                last_state[record.device_id] = \
                    STATE_NAMES[record.to_state]
            else:
                result["session_records"] += 1
                key_name = "accepted" if record.accepted else "rejected"
                result[key_name] += 1
                if record.cache_hit:
                    result["cache_hits"] += 1
    result["devices"] = len(devices)
    result["policy_states"] = dict(Counter(last_state.values()))
    result["ok"] = True
    return emit(0)


def _cmd_policy(args) -> int:
    """Exit codes: 0 = campaign SLA met (every compromised device
    quarantined and rejoined, zero wrongful quarantines, evidence
    clean); 1 = any SLA or audit failure; 2 = bad flag combination."""
    from repro.cfa.fleet import (
        CampaignSimulator,
        ChainFactory,
        FleetService,
        ShardedFleetService,
        build_campaign_specs,
        device_key,
    )
    from repro.cfa.policy import PolicyEngine, PolicyRegistry, policy_key

    if args.store and not args.shards:
        print("policy: --store requires --shards", file=sys.stderr)
        return 2
    if args.smoke_restart and not (args.shards and args.store):
        print("policy: --smoke-restart requires --shards and --store",
              file=sys.stderr)
        return 2

    specs = build_campaign_specs(
        args.devices, compromised_fraction=args.compromised_fraction,
        method=args.method, seed=args.seed)
    factory = ChainFactory(watermark=1024, cache=_make_cache(args))
    simulator = CampaignSimulator(specs, seed=args.seed, factory=factory)

    def make_service(resume: bool = False):
        if args.shards:
            return ShardedFleetService(
                shards=args.shards, store_dir=args.store,
                idle_timeout=5.0, resume=resume,
                policy=True, key_lookup=device_key)
        return FleetService(
            idle_timeout=5.0,
            policy=PolicyEngine(registry=PolicyRegistry(
                policy_key(b"fleet-vrf"))),
            key_lookup=device_key)

    service = make_service()
    if not args.no_pin:
        pinned = simulator.pin_profiles(service)
        print(f"policy: pinned {pinned} firmware profile(s)",
              file=sys.stderr)
    if args.smoke_restart:
        # round 0, hard-stop mid-campaign (no clean close), restart
        # over the same store, re-issue standing heal orders, finish —
        # the control-plane durability smoke the CI gate runs
        simulator.run_round(service, 0)
        simulator.heal_round(service, 0)
        for shard in service.shards:  # flush OS buffers, skip close()
            shard.store.close()
        service = make_service(resume=True)
        print(f"policy: restart recovered "
              f"{service.recovered_verdicts} verdicts; policy states "
              f"rebuilt from evidence", file=sys.stderr)
        resumed = simulator.heal_round(service, 0, resume=True)
        if resumed:
            print(f"policy: re-issued {resumed} standing heal "
                  f"order(s)", file=sys.stderr)
        simulator.deliver_notices(service)
        for round_index in range(1, args.rounds):
            simulator.run_round(service, round_index)
            simulator.heal_round(service, round_index)
            simulator.deliver_notices(service)
        simulator.report.rounds = args.rounds
        simulator.report.end_states = service.policy.state_names()
        report = simulator.report
    else:
        report = simulator.run(service, rounds=args.rounds)
    metrics = service.close()
    print(f"policy: {metrics.summary()}", file=sys.stderr)
    print(f"policy: {report.summary()}")
    failures = []
    for device_id in report.compromised:
        end = report.end_states.get(device_id, "HEALTHY")
        if device_id not in report.quarantined_round:
            failures.append(f"{device_id}: compromised but never "
                            f"quarantined")
        elif end != "REJOINED":
            failures.append(f"{device_id}: quarantined but ended "
                            f"{end}, not REJOINED")
    for device_id in report.wrongful_quarantines:
        failures.append(f"{device_id}: honest device was quarantined")
    if args.store:
        audited = _audit_store(args.store)
        if audited < 0:
            failures.append("evidence audit failed")
        else:
            print(f"policy: evidence trail verified from disk "
                  f"({audited} records)", file=sys.stderr)
    for line in failures:
        print(f"FAILED {line}")
    if failures:
        print(f"policy: {len(failures)} SLA failure(s)")
        return 1
    print(f"policy: campaign SLA met over {len(specs)} device(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAP-Track reproduction: CFA via parallel MTB/DWT "
                    "tracking on a simulated ARMv8-M MCU",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads") \
        .set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="attest and verify one workload")
    run.add_argument("workload", choices=sorted(WORKLOADS))
    run.add_argument("--method", choices=METHODS, default="rap-track")
    run.add_argument("--no-jit", action="store_true",
                     help="force the pure-interpreter tier "
                          "(results are identical, only slower)")
    _add_cache_flags(run)
    run.set_defaults(func=_cmd_run)

    profile = sub.add_parser(
        "profile",
        help="cProfile one attested execution (simulator hot spots)")
    profile.add_argument("workload", choices=sorted(WORKLOADS))
    profile.add_argument("--method", choices=METHODS, default="rap-track")
    profile.add_argument("--no-jit", action="store_true",
                         help="profile the pure-interpreter tier")
    profile.add_argument("--top", type=int, default=25, metavar="N",
                         help="rows of the stats table (default: 25)")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "ncalls"],
                         help="stat ordering (default: cumulative)")
    _add_cache_flags(profile)
    profile.set_defaults(func=_cmd_profile)

    figures = sub.add_parser("figures",
                             help="regenerate the paper's tables")
    figures.add_argument("--workloads", nargs="*",
                         help="subset to evaluate (default: all)")
    figures.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the evaluation grid "
                              "(default: 1 = serial)")
    figures.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SEC",
                         help="per-cell wall-clock timeout")
    figures.add_argument("--quiet", action="store_true",
                         help="suppress the per-cell progress stream")
    _add_cache_flags(figures)
    figures.set_defaults(func=_cmd_figures)

    offline = sub.add_parser("offline",
                             help="show the rewriter output for a workload")
    offline.add_argument("workload", choices=sorted(WORKLOADS))
    offline.set_defaults(func=_cmd_offline)

    analyze = sub.add_parser(
        "analyze",
        help="static-analysis report / CFG dot export / path-bound "
             "certification / gadget mining")
    analyze.add_argument("workload", nargs="?", default=None,
                         choices=sorted(WORKLOADS) + ["vulnerable"],
                         help="one workload (default for --bounds: all)")
    analyze.add_argument("--dot", action="store_true",
                         help="emit graphviz dot instead of the report")
    analyze.add_argument("--bounds", action="store_true",
                         help="certify path bounds (BNDS1) across the "
                              "workload matrix")
    analyze.add_argument("--attack-surface", action="store_true",
                         help="mine ROP/JOP gadgets and synthesize "
                              "attack chains")
    analyze.add_argument("--store-dir", metavar="DIR", default=None,
                         help="with --bounds: write signed .bnds "
                              "certificates here, content-addressed")
    _add_cache_flags(analyze)
    analyze.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="certify rewrites + hygiene-check workloads (CI gate)")
    lint.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                      help="single workload (default: --all)")
    lint.add_argument("--all", action="store_true",
                      help="lint every workload (the default)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report")
    lint.set_defaults(func=_cmd_lint)

    sub.add_parser("attack", help="ROP detection demonstration") \
        .set_defaults(func=_cmd_attack)

    fleet = sub.add_parser(
        "fleet", help="simulate a device fleet against the async verifier")
    fleet.add_argument("--devices", type=int, default=100, metavar="N",
                       help="fleet size (default: 100)")
    fleet.add_argument("--workers", type=int, default=0, metavar="W",
                       help="verification pool size "
                            "(default: 0 = verify inline)")
    fleet.add_argument("--executor", choices=["auto", "thread", "process"],
                       default="auto",
                       help="pool flavour for --workers > 1")
    fleet.add_argument("--attack-fraction", type=float, default=0.3,
                       metavar="F",
                       help="fraction of hostile/faulty devices "
                            "(default: 0.3)")
    fleet.add_argument("--method", choices=["rap-track", "traces"],
                       default="rap-track")
    fleet.add_argument("--seed", type=int, default=0,
                       help="fleet composition + delivery RNG seed")
    fleet.add_argument("--no-replay-cache", action="store_true",
                       help="disable replay memoization across "
                            "identical chains")
    fleet.add_argument("--shards", type=int, default=0, metavar="S",
                       help="shard the fleet across S services behind "
                            "a consistent-hash router "
                            "(default: 0 = single service)")
    fleet.add_argument("--store", metavar="DIR",
                       help="durable evidence-store directory "
                            "(requires --shards >= 1)")
    fleet.add_argument("--smoke-restart", action="store_true",
                       help="hard-stop the service halfway, recover "
                            "from the evidence logs, finish the run "
                            "(the CI durability smoke)")
    fleet.add_argument("--learn", type=int, default=0, metavar="R",
                       help="adaptive speculation: after the first run, "
                            "mine dictionaries from sampled traffic, "
                            "push/ACK them, and re-run the fleet, R "
                            "times (default: 0 = off)")
    _add_cache_flags(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    audit = sub.add_parser(
        "audit",
        help="verify a fleet evidence store's hash chains from disk "
             "(exit 0 = clean, 1 = missing logs or any integrity "
             "failure)")
    audit.add_argument("store", metavar="DIR",
                       help="evidence-store directory (evidence-*.log)")
    audit.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    audit.set_defaults(func=_cmd_audit)

    policy = sub.add_parser(
        "policy",
        help="compromise-then-heal campaign against the policy control "
             "plane (exit 0 = SLA met, 1 = SLA/audit failure)")
    policy.add_argument("--devices", type=int, default=100, metavar="N",
                        help="fleet size (default: 100)")
    policy.add_argument("--compromised-fraction", type=float,
                        default=0.05, metavar="F",
                        help="fraction of initially-compromised devices "
                             "(default: 0.05)")
    policy.add_argument("--rounds", type=int, default=3, metavar="R",
                        help="attest/heal/notify cycles (default: 3)")
    policy.add_argument("--method", choices=["rap-track", "traces"],
                        default="rap-track")
    policy.add_argument("--seed", type=int, default=0,
                        help="fleet composition + delivery RNG seed")
    policy.add_argument("--shards", type=int, default=0, metavar="S",
                        help="shard the fleet across S services "
                             "(default: 0 = single service)")
    policy.add_argument("--store", metavar="DIR",
                        help="durable evidence-store directory "
                             "(requires --shards >= 1)")
    policy.add_argument("--smoke-restart", action="store_true",
                        help="hard-stop the service after the first "
                             "round, rebuild the control plane from "
                             "the evidence logs, finish the campaign "
                             "(the CI policy smoke)")
    policy.add_argument("--no-pin", action="store_true",
                        help="skip publishing per-profile firmware "
                             "policy documents")
    _add_cache_flags(policy)
    policy.set_defaults(func=_cmd_policy)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
