"""BEEBs 'insertsort': insertion sort of a 24-element array.

Profile: the inner shift loop is a while loop with *two* data-dependent
exits (index bound and comparison) plus an unconditional latch — the
classic silent-cycle shape that exercises the UNCOND_LATCH/forward-exit
machinery, with memory traffic on every iteration.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

N = 24


def array_values(seed: int = 41):
    rng = LCG(seed)
    return [rng.randint(0, 499) for _ in range(N)]


def _array_words(seed: int = 41) -> str:
    values = array_values(seed)
    return "\n".join(
        "    .word " + ", ".join(str(v) for v in values[i:i + 8])
        for i in range(0, N, 8))


SOURCE = f"""
; Insertion sort of an {N}-element word array.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =array
    mov r5, #1                ; i
outer:
    ldr r6, [r4, r5, lsl #2]  ; key = a[i]
    mov r7, r5                ; j
shift_loop:
    cmp r7, #0
    beq place                 ; j == 0: slot found
    sub r1, r7, #1
    ldr r2, [r4, r1, lsl #2]  ; a[j-1]
    cmp r2, r6
    ble place                 ; a[j-1] <= key: slot found
    str r2, [r4, r7, lsl #2]  ; shift right
    mov r7, r1
    b shift_loop
place:
    str r6, [r4, r7, lsl #2]
    add r5, r5, #1
    cmp r5, #{N}
    blt outer

    ; publish median, min, max
    ldr r0, =GPIO
    ldr r1, [r4, #{4 * (N // 2)}]
    str r1, [r0]              ; GPIO0 = upper median
    ldr r1, [r4]
    str r1, [r0, #4]          ; GPIO1 = min
    ldr r1, [r4, #{4 * (N - 1)}]
    str r1, [r0, #8]          ; GPIO2 = max
    bkpt

.data
array:
{_array_words()}
"""


def reference(seed: int = 41) -> dict:
    values = sorted(array_values(seed))
    return {"median": values[N // 2], "min": values[0], "max": values[-1]}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"median": gpio.latches[0], "min": gpio.latches[1],
               "max": gpio.latches[2]}
        assert got == expected, f"insertsort mismatch: {got} != {expected}"
        base = mcu.image.addr_of("array")
        in_memory = [mcu.memory.peek(base + 4 * i) for i in range(N)]
        assert in_memory == sorted(array_values()), "array not sorted"

    return Workload(
        name="insertsort",
        description="BEEBs insertsort: data-dependent shift loops",
        source=SOURCE,
        devices=devices,
        check=check,
    )
