"""BEEBs 'fibcall': naive recursive Fibonacci.

Profile: call/return dominated — hundreds of ``bl`` + ``pop {..,pc}``
pairs exercise the shared MTBAR_POP_ADDR stub (figure 4) and the
Verifier's shadow return stack at real recursion depth.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort

ARG = 11


SOURCE = f"""
; Naive recursive Fibonacci (fib(1) = fib(0) = 1).
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{lr}}
    mov r0, #{ARG}
    bl fib
    ldr r1, =GPIO
    str r0, [r1]              ; GPIO0 = fib(ARG)
    bkpt

fib:
    push {{r4, r5, lr}}
    mov r4, r0
    cmp r0, #2
    blt fib_base
    sub r0, r4, #1
    bl fib
    mov r5, r0
    sub r0, r4, #2
    bl fib
    add r0, r0, r5
    pop {{r4, r5, pc}}
fib_base:
    mov r0, #1
    pop {{r4, r5, pc}}
"""


def reference() -> dict:
    def fib(n):
        return 1 if n < 2 else fib(n - 1) + fib(n - 2)

    return {"fib": fib(ARG)}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"fib": gpio.latches[0]}
        assert got == expected, f"fibcall mismatch: {got} != {expected}"

    return Workload(
        name="fibcall",
        description="BEEBs fibcall: recursive calls and stack returns",
        source=SOURCE,
        devices=devices,
        check=check,
    )
