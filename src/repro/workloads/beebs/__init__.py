"""BEEBs benchmark workloads (Pallister et al.), re-implemented for the
simulated ISA: prime, crc32, bubblesort, fibcall, matmult."""
