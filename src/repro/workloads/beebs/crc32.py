"""BEEBs 'crc32': table-driven CRC-32 over a 64-byte buffer.

Profile: the whole computation is straight-line table lookups inside
fixed loops — *statically deterministic* end to end, so RAP-Track logs
(almost) nothing while the naive MTB records every loop iteration. The
low-overhead end of the paper's figures.

The lookup table lives in .rodata (standard embedded practice), so no
data-dependent branches exist at all; correctness is checked against
``binascii.crc32``.
"""

from __future__ import annotations

import binascii

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

BUF_LEN = 64
_POLY = 0xEDB88320


def _crc_table():
    table = []
    for i in range(256):
        c = i
        for _ in range(8):
            c = (c >> 1) ^ _POLY if c & 1 else c >> 1
        table.append(c)
    return table


def buffer_bytes(seed: int = 23) -> bytes:
    rng = LCG(seed)
    return bytes(rng.randint(0, 255) for _ in range(BUF_LEN))


def _table_words() -> str:
    table = _crc_table()
    lines = []
    for i in range(0, 256, 8):
        lines.append("    .word " + ", ".join(
            f"{v:#010x}" for v in table[i:i + 8]))
    return "\n".join(lines)


def _buffer_byte_lines(seed: int = 23) -> str:
    data = buffer_bytes(seed)
    lines = []
    for i in range(0, BUF_LEN, 16):
        lines.append("    .byte " + ", ".join(
            str(b) for b in data[i:i + 16]))
    return "\n".join(lines)


SOURCE = f"""
; Table-driven CRC-32 (poly 0xEDB88320) over a {BUF_LEN}-byte buffer.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =data_buf
    ldr r5, =crc_table
    mov32 r6, #0xFFFFFFFF     ; running CRC
    mov r7, #0                ; byte index
crc_loop:
    ldrb r0, [r4, r7]
    eor r0, r0, r6
    and r0, r0, #255
    ldr r0, [r5, r0, lsl #2]
    lsr r1, r6, #8
    eor r6, r0, r1
    add r7, r7, #1
    cmp r7, #{BUF_LEN}
    blt crc_loop
    mov32 r1, #0xFFFFFFFF
    eor r6, r6, r1
    ldr r2, =GPIO
    str r6, [r2]              ; GPIO0 = CRC-32

    ; plain byte checksum as a second fixed pass
    mov r7, #0
    mov r0, #0
sum_loop:
    ldrb r1, [r4, r7]
    add r0, r0, r1
    add r7, r7, #1
    cmp r7, #{BUF_LEN}
    blt sum_loop
    str r0, [r2, #4]          ; GPIO1 = byte sum
    bkpt

.rodata
crc_table:
{_table_words()}
data_buf:
{_buffer_byte_lines()}
"""


def reference(seed: int = 23) -> dict:
    data = buffer_bytes(seed)
    return {"crc": binascii.crc32(data) & 0xFFFFFFFF, "sum": sum(data)}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"crc": gpio.latches[0], "sum": gpio.latches[1]}
        assert got == expected, f"crc32 mismatch: {got} != {expected}"

    return Workload(
        name="crc32",
        description="BEEBs crc32: table-driven CRC over a buffer",
        source=SOURCE,
        devices=devices,
        check=check,
    )
