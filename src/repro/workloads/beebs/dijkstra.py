"""BEEBs 'dijkstra': single-source shortest paths, O(n^2) scan.

Profile: array-walking loops with per-element data-dependent
conditionals (unvisited check, running-minimum, edge test, relaxation)
— four conditional sites firing data-dependently inside fixed loops, a
dense mid-range point between the loop-dominated firmwares and the
call-heavy benchmarks.
"""

from __future__ import annotations

from typing import List

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

N = 8
INF = 0xFFFF


def adjacency(seed: int = 47) -> List[List[int]]:
    """A connected weighted digraph: a ring plus seeded chords."""
    rng = LCG(seed)
    adj = [[INF] * N for _ in range(N)]
    for i in range(N):
        adj[i][(i + 1) % N] = rng.randint(1, 9)
    for _ in range(10):
        a, b = rng.randint(0, N - 1), rng.randint(0, N - 1)
        if a != b:
            adj[a][b] = rng.randint(1, 20)
    return adj


def _adj_words(seed: int = 47) -> str:
    return "\n".join(
        "    .word " + ", ".join(str(w) for w in row)
        for row in adjacency(seed))


SOURCE = f"""
; Dijkstra from node 0 over an {N}-node adjacency matrix.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =dist

    ; ---- init: dist[*] = INF, dist[0] = 0 ----
    mov r5, #0
init_loop:
    mov32 r1, #{INF}
    str r1, [r4, r5, lsl #2]
    add r5, r5, #1
    cmp r5, #{N}
    blt init_loop
    mov r1, #0
    str r1, [r4]

    mov r7, #0                ; settled-node counter
iter_loop:
    ; ---- select the unvisited node with minimal distance ----
    mov32 r0, #0x7FFFFFFF     ; best distance
    mov r6, #0                ; best node
    mov r5, #0
scan_loop:
    ldr r1, =visited
    ldr r2, [r1, r5, lsl #2]
    cmp r2, #0
    bne scan_next             ; already settled
    ldr r2, [r4, r5, lsl #2]
    cmp r2, r0
    bge scan_next             ; not an improvement
    mov r0, r2
    mov r6, r5
scan_next:
    add r5, r5, #1
    cmp r5, #{N}
    blt scan_loop

    ldr r1, =visited
    mov r2, #1
    str r2, [r1, r6, lsl #2]  ; settle u

    ; ---- relax u's outgoing edges ----
    mov r5, #0
relax_loop:
    ldr r1, =adj
    mov r2, #{N}
    mul r3, r6, r2
    add r3, r3, r5
    ldr r1, [r1, r3, lsl #2]  ; w = adj[u][v]
    mov32 r2, #{INF}
    cmp r1, r2
    bge relax_next            ; no edge
    ldr r2, [r4, r6, lsl #2]  ; dist[u]
    add r2, r2, r1
    ldr r3, [r4, r5, lsl #2]  ; dist[v]
    cmp r2, r3
    bge relax_next            ; no improvement
    str r2, [r4, r5, lsl #2]
relax_next:
    add r5, r5, #1
    cmp r5, #{N}
    blt relax_loop

    add r7, r7, #1
    cmp r7, #{N}
    blt iter_loop

    ; ---- publish dist[N-1] and the distance checksum ----
    ldr r0, =GPIO
    ldr r1, [r4, #{4 * (N - 1)}]
    str r1, [r0]              ; GPIO0 = dist to last node
    mov r5, #0
    mov r1, #0
sum_loop:
    ldr r2, [r4, r5, lsl #2]
    add r1, r1, r2
    add r5, r5, #1
    cmp r5, #{N}
    blt sum_loop
    str r1, [r0, #4]          ; GPIO1 = checksum
    bkpt

.rodata
adj:
{_adj_words()}

.data
dist:
    .space {4 * N}
visited:
    .space {4 * N}
"""


def reference(seed: int = 47) -> dict:
    adj = adjacency(seed)
    dist = [INF] * N
    dist[0] = 0
    visited = [False] * N
    for _ in range(N):
        best, u = 0x7FFFFFFF, 0
        for v in range(N):
            if not visited[v] and dist[v] < best:
                best, u = dist[v], v
        visited[u] = True
        for v in range(N):
            w = adj[u][v]
            if w < INF and dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
    return {"target": dist[N - 1], "checksum": sum(dist)}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"target": gpio.latches[0], "checksum": gpio.latches[1]}
        assert got == expected, f"dijkstra mismatch: {got} != {expected}"
        # cross-check the whole vector via networkx-equivalent relaxation
        base = mcu.image.addr_of("dist")
        adj = adjacency()
        in_memory = [mcu.memory.peek(base + 4 * i) for i in range(N)]
        assert in_memory[0] == 0
        for u in range(N):
            for v in range(N):
                if adj[u][v] < INF:
                    assert in_memory[v] <= in_memory[u] + adj[u][v]

    return Workload(
        name="dijkstra",
        description="BEEBs dijkstra: O(n^2) shortest paths",
        source=SOURCE,
        devices=devices,
        check=check,
    )
