"""BEEBs 'matmult': 6x6 integer matrix multiplication.

Profile: a triply-nested *fixed* loop — the innermost-out fixed-loop
analysis proves the whole kernel statically deterministic, so RAP-Track
logs nothing at all, while the naive MTB records every one of the
hundreds of loop back edges. The extreme CFLog-ratio end.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

DIM = 6


def matrices(seed: int = 31):
    rng = LCG(seed)
    a = [[rng.randint(0, 20) for _ in range(DIM)] for _ in range(DIM)]
    b = [[rng.randint(0, 20) for _ in range(DIM)] for _ in range(DIM)]
    return a, b


def _matrix_words(matrix) -> str:
    lines = []
    for row in matrix:
        lines.append("    .word " + ", ".join(str(v) for v in row))
    return "\n".join(lines)


def _sources():
    a, b = matrices()
    return _matrix_words(a), _matrix_words(b)


_A_WORDS, _B_WORDS = _sources()

SOURCE = f"""
; c = a * b for {DIM}x{DIM} integer matrices.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    mov r4, #0                ; i
outer_i:
    mov r5, #0                ; j
outer_j:
    mov r6, #0                ; k
    mov r7, #0                ; accumulator
inner_k:
    mov r1, #{DIM}
    mul r0, r4, r1
    add r0, r0, r6
    ldr r2, =mat_a
    ldr r2, [r2, r0, lsl #2]  ; a[i][k]
    mul r0, r6, r1
    add r0, r0, r5
    ldr r3, =mat_b
    ldr r3, [r3, r0, lsl #2]  ; b[k][j]
    mul r2, r2, r3
    add r7, r7, r2
    add r6, r6, #1
    cmp r6, #{DIM}
    blt inner_k
    mov r1, #{DIM}
    mul r0, r4, r1
    add r0, r0, r5
    ldr r2, =mat_c
    str r7, [r2, r0, lsl #2]  ; c[i][j]
    add r5, r5, #1
    cmp r5, #{DIM}
    blt outer_j
    add r4, r4, #1
    cmp r4, #{DIM}
    blt outer_i

    ; checksum of c
    mov r4, #0
    mov r5, #0
    ldr r2, =mat_c
sum_loop:
    ldr r1, [r2, r4, lsl #2]
    add r5, r5, r1
    add r4, r4, #1
    cmp r4, #{DIM * DIM}
    blt sum_loop
    ldr r2, =GPIO
    str r5, [r2]              ; GPIO0 = checksum
    bkpt

.rodata
mat_a:
{_A_WORDS}
mat_b:
{_B_WORDS}

.data
mat_c:
    .space {4 * DIM * DIM}
"""


def reference() -> dict:
    a, b = matrices()
    total = 0
    product = [[0] * DIM for _ in range(DIM)]
    for i in range(DIM):
        for j in range(DIM):
            acc = sum(a[i][k] * b[k][j] for k in range(DIM))
            product[i][j] = acc
            total += acc
    return {"checksum": total, "product": product}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        assert gpio.latches[0] == expected["checksum"], (
            f"matmult checksum {gpio.latches[0]} != {expected['checksum']}"
        )
        base = mcu.image.addr_of("mat_c")
        for i in range(DIM):
            for j in range(DIM):
                got = mcu.memory.peek(base + 4 * (i * DIM + j))
                assert got == expected["product"][i][j]

    return Workload(
        name="matmult",
        description="BEEBs matmult: fully fixed triple loop nest",
        source=SOURCE,
        devices=devices,
        check=check,
    )
