"""BEEBs 'strsearch': naive substring search.

Profile: nested scanning loops with register-vs-register bounds and an
early-mismatch exit — most inner comparisons fail on the first byte, so
the taken/not-taken asymmetry of the conditional trampolines matters.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

HAYSTACK_LEN = 96
NEEDLE = b"sense"


def haystack_bytes(seed: int = 43) -> bytes:
    """Lowercase noise with the needle planted at two known spots."""
    rng = LCG(seed)
    data = bytearray(97 + rng.randint(0, 25) for _ in range(HAYSTACK_LEN))
    data[20:20 + len(NEEDLE)] = NEEDLE
    data[71:71 + len(NEEDLE)] = NEEDLE
    return bytes(data)


def _byte_lines(data: bytes) -> str:
    return "\n".join(
        "    .byte " + ", ".join(str(b) for b in data[i:i + 16])
        for i in range(0, len(data), 16))


SOURCE = f"""
; Count occurrences of a needle in a haystack (naive scan).
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =haystack
    ldr r5, =needle
    mov r6, #0                ; match count
    mov32 r0, #0xFFFFFFFF
    mov r7, r0                ; first match index (-1)
    mov r0, #0                ; position
    mov32 r1, #{HAYSTACK_LEN - len(NEEDLE)}
scan:
    cmp r0, r1
    bgt done
    mov r2, #0                ; needle offset
cmploop:
    cmp r2, #{len(NEEDLE)}
    bge matched
    add r3, r4, r0
    ldrb r3, [r3, r2]
    add r12, r5, r2
    ldrb r12, [r12]
    cmp r3, r12
    bne next_pos              ; early mismatch exit
    add r2, r2, #1
    b cmploop
matched:
    add r6, r6, #1
    cmp r7, #0
    bge next_pos              ; first index already set
    mov r7, r0
next_pos:
    add r0, r0, #1
    b scan
done:
    ldr r0, =GPIO
    str r6, [r0]              ; GPIO0 = matches
    str r7, [r0, #4]          ; GPIO1 = first index
    bkpt

.rodata
haystack:
{_byte_lines(haystack_bytes())}
needle:
{_byte_lines(NEEDLE)}
"""


def reference(seed: int = 43) -> dict:
    data = haystack_bytes(seed)
    matches = 0
    first = 0xFFFFFFFF
    for pos in range(HAYSTACK_LEN - len(NEEDLE) + 1):
        if data[pos:pos + len(NEEDLE)] == NEEDLE:
            if first == 0xFFFFFFFF:
                first = pos
            matches += 1
    return {"matches": matches, "first": first}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"matches": gpio.latches[0], "first": gpio.latches[1]}
        assert got == expected, f"strsearch mismatch: {got} != {expected}"
        assert got["matches"] >= 2  # the planted occurrences

    return Workload(
        name="strsearch",
        description="BEEBs strsearch: naive substring scan",
        source=SOURCE,
        devices=devices,
        check=check,
    )
