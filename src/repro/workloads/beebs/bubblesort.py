"""BEEBs 'bubblesort': in-place sort of a 28-element array.

Profile: the inner loop bound is a register (``N-1-i``), so the latch
is *not* simple and is trampolined per iteration, and the swap
conditional fires data-dependently about half the time. The densest
CFLog of the suite — under the 4 KB MTB limit this workload forces
partial reports, and under instrumentation it pays a world switch for
every compare, making it the paper's worst-case runtime end.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

N = 28


def array_values(seed: int = 29):
    rng = LCG(seed)
    return [rng.randint(0, 999) for _ in range(N)]


def _array_words(seed: int = 29) -> str:
    values = array_values(seed)
    lines = []
    for i in range(0, N, 8):
        lines.append("    .word " + ", ".join(
            str(v) for v in values[i:i + 8]))
    return "\n".join(lines)


SOURCE = f"""
; Bubble sort of an {N}-element word array.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =array
    mov r5, #0                ; i
outer_loop:
    mov r6, #0                ; j
    mov r7, #{N - 1}
    sub r7, r7, r5            ; inner bound = N-1-i (register!)
inner_loop:
    ldr r0, [r4, r6, lsl #2]
    add r2, r6, #1
    ldr r1, [r4, r2, lsl #2]
    cmp r0, r1
    ble no_swap
    str r1, [r4, r6, lsl #2]
    str r0, [r4, r2, lsl #2]
no_swap:
    add r6, r6, #1
    cmp r6, r7
    blt inner_loop
    add r5, r5, #1
    cmp r5, #{N - 1}
    blt outer_loop

    ; publish min, max, and checksum
    ldr r2, =GPIO
    ldr r0, [r4]
    str r0, [r2]              ; GPIO0 = minimum
    ldr r0, [r4, #{4 * (N - 1)}]
    str r0, [r2, #4]          ; GPIO1 = maximum
    mov r5, #0
    mov r0, #0
sum_loop:
    ldr r1, [r4, r5, lsl #2]
    add r0, r0, r1
    add r5, r5, #1
    cmp r5, #{N}
    blt sum_loop
    str r0, [r2, #8]          ; GPIO2 = checksum
    bkpt

.data
array:
{_array_words()}
"""


def reference(seed: int = 29) -> dict:
    values = sorted(array_values(seed))
    return {"min": values[0], "max": values[-1], "sum": sum(values)}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"min": gpio.latches[0], "max": gpio.latches[1],
               "sum": gpio.latches[2]}
        assert got == expected, f"bubblesort mismatch: {got} != {expected}"
        base = mcu.image.addr_of("array")
        in_memory = [mcu.memory.peek(base + 4 * i) for i in range(N)]
        assert in_memory == sorted(array_values()), "array not sorted"

    return Workload(
        name="bubblesort",
        description="BEEBs bubblesort: register-bound nested loops",
        source=SOURCE,
        devices=devices,
        check=check,
    )
