"""BEEBs 'prime': trial-division prime counting.

Profile: branch-dense compute with data-dependent inner loops whose
bounds are register-vs-register comparisons (not 'simple' in the
paper's sense, so they are trampolined per iteration). The paper uses
prime to show that RAP-Track and optimized instrumentation produce
*similar* CFLog sizes while RAP-Track's runtime is far better
(section V-B).
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort

LIMIT = 120


SOURCE = f"""
; Count primes below LIMIT by trial division.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r7, =GPIO
    mov r4, #3                ; candidate n
    mov r6, #1                ; prime count (2 is prime)
next_candidate:
    mov r0, r4
    bl is_prime
    cmp r0, #0
    beq not_prime
    add r6, r6, #1
    str r4, [r7, #4]          ; GPIO1 = last prime found
not_prime:
    add r4, r4, #2
    cmp r4, #{LIMIT}
    blt next_candidate
    str r6, [r7]              ; GPIO0 = prime count
    bkpt

; is_prime(n) -> 1/0 via trial division by odd d while d*d <= n
is_prime:
    push {{r4, r5, lr}}
    mov r4, r0                ; n
    mov r5, #3                ; divisor d
trial_loop:
    mul r1, r5, r5            ; d*d
    cmp r1, r4
    bgt prime_yes             ; d*d > n: no divisor found
    udiv r1, r4, r5           ; n / d
    mul r1, r1, r5
    sub r1, r4, r1            ; n mod d
    cmp r1, #0
    beq prime_no
    add r5, r5, #2
    b trial_loop
prime_yes:
    mov r0, #1
    pop {{r4, r5, pc}}
prime_no:
    mov r0, #0
    pop {{r4, r5, pc}}
"""


def reference() -> dict:
    def is_prime(n):
        d = 3
        while d * d <= n:
            if n % d == 0:
                return False
            d += 2
        return True

    primes = [2] + [n for n in range(3, LIMIT, 2) if is_prime(n)]
    return {"count": len(primes), "last": max(p for p in primes if p > 2)}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"count": gpio.latches[0], "last": gpio.latches[1]}
        assert got == expected, f"prime mismatch: {got} != {expected}"

    return Workload(
        name="prime",
        description="BEEBs prime: trial-division prime counting",
        source=SOURCE,
        devices=devices,
        check=check,
    )
