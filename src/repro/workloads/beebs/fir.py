"""BEEBs 'fir': fixed-point FIR filter over ADC samples.

Profile: multiply-accumulate nests with *fixed* bounds — almost fully
statically deterministic for RAP-Track — plus a data-dependent
peak-detection conditional per output sample. A DSP-flavoured point
near the crc32/matmult end of the figures.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import ADC_BASE, GPIO_BASE, Workload
from repro.workloads.peripherals import ADCDevice, GPIOPort

SAMPLES = 40
TAPS = 8
#: symmetric low-pass-ish integer taps (sum 64 -> >>6 normalisation)
COEFFS = (2, 6, 12, 12, 12, 12, 6, 2)
SHIFT = 6


def _coeff_words() -> str:
    return "    .word " + ", ".join(str(c) for c in COEFFS)


SOURCE = f"""
; {TAPS}-tap integer FIR over {SAMPLES} ADC samples, with peak tracking.
.equ ADC, {ADC_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}

    ; ---- acquire samples (fixed loop) ----
    ldr r4, =samples
    ldr r6, =ADC
    mov r5, #0
acq_loop:
    ldr r1, [r6]
    str r1, [r4, r5, lsl #2]
    add r5, r5, #1
    cmp r5, #{SAMPLES}
    blt acq_loop

    ; ---- convolve (fixed nest) + track the peak output ----
    ldr r6, =coeffs
    mov r5, #{TAPS - 1}       ; output index i
    mov r7, #0                ; running output checksum
    mov r12, #0               ; peak
conv_loop:
    mov r2, #0                ; tap index j
    mov r3, #0                ; accumulator
tap_loop:
    sub r0, r5, r2            ; sample index i-j
    ldr r1, [r4, r0, lsl #2]
    ldr r0, [r6, r2, lsl #2]
    mul r1, r1, r0
    add r3, r3, r1
    add r2, r2, #1
    cmp r2, #{TAPS}
    blt tap_loop
    lsr r3, r3, #{SHIFT}      ; normalise
    add r7, r7, r3
    cmp r3, r12               ; new peak?
    ble not_peak
    mov r12, r3
not_peak:
    add r5, r5, #1
    cmp r5, #{SAMPLES}
    blt conv_loop

    ldr r0, =GPIO
    str r7, [r0]              ; GPIO0 = output checksum
    str r12, [r0, #4]         ; GPIO1 = peak output
    bkpt

.rodata
coeffs:
{_coeff_words()}

.data
samples:
    .space {4 * SAMPLES}
"""


def reference(adc: ADCDevice) -> dict:
    samples = adc.expected_samples(SAMPLES)
    outputs = []
    for i in range(TAPS - 1, SAMPLES):
        acc = sum(COEFFS[j] * samples[i - j] for j in range(TAPS))
        outputs.append(acc >> SHIFT)
    return {"checksum": sum(outputs), "peak": max(outputs)}


def make() -> Workload:
    adc = ADCDevice(seed=53, base_value=300, spread=200)
    gpio = GPIOPort()

    def devices():
        adc.reset()
        gpio.reset()
        return [(ADC_BASE, adc, "adc"), (GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference(ADCDevice(seed=53, base_value=300, spread=200))
        got = {"checksum": gpio.latches[0], "peak": gpio.latches[1]}
        assert got == expected, f"fir mismatch: {got} != {expected}"

    return Workload(
        name="fir",
        description="BEEBs fir: fixed-point FIR with peak tracking",
        source=SOURCE,
        devices=devices,
        check=check,
    )
