"""BEEBs 'bitcount': population counts via three classic algorithms.

Profile: a mixed bag by design — the shift-and-test loop is a fixed
loop with a data-dependent conditional per bit (log-heavy for every
optimized method), Kernighan's loop is a data-dependent while loop
(forward-exit trampolines), and the nibble-arithmetic popcount is pure
straight-line (free for RAP-Track).
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG

WORDS = 12


def word_values(seed: int = 37):
    rng = LCG(seed)
    return [(rng.next() << 7 ^ rng.next()) & 0xFFFFFFFF
            for _ in range(WORDS)]


def _word_lines(seed: int = 37) -> str:
    return "\n".join(f"    .word {v:#010x}" for v in word_values(seed))


SOURCE = f"""
; Population count over {WORDS} words, three ways.
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r7, =words

    ; ---- method 1: shift and test every bit ----
    mov r5, #0                ; word index
    mov r6, #0                ; total
m1_words:
    ldr r1, [r7, r5, lsl #2]
    mov r2, #0                ; bit index
m1_bits:
    tst r1, #1
    beq m1_zero
    add r6, r6, #1
m1_zero:
    lsr r1, r1, #1
    add r2, r2, #1
    cmp r2, #32
    blt m1_bits
    add r5, r5, #1
    cmp r5, #{WORDS}
    blt m1_words
    ldr r0, =GPIO
    str r6, [r0]              ; GPIO0 = shift-and-test total

    ; ---- method 2: Kernighan's clear-lowest-set-bit loop ----
    mov r5, #0
    mov r6, #0
m2_words:
    ldr r1, [r7, r5, lsl #2]
m2_loop:
    cbz r1, m2_done
    sub r2, r1, #1
    and r1, r1, r2
    add r6, r6, #1
    b m2_loop
m2_done:
    add r5, r5, #1
    cmp r5, #{WORDS}
    blt m2_words
    ldr r0, =GPIO
    str r6, [r0, #4]          ; GPIO1 = Kernighan total

    ; ---- method 3: parallel nibble arithmetic (branch-free) ----
    mov r5, #0
    mov r6, #0
m3_words:
    ldr r1, [r7, r5, lsl #2]
    lsr r2, r1, #1
    mov32 r3, #0x55555555
    and r2, r2, r3
    sub r1, r1, r2            ; pairs
    mov32 r3, #0x33333333
    and r2, r1, r3
    lsr r1, r1, #2
    and r1, r1, r3
    add r1, r1, r2            ; nibbles
    lsr r2, r1, #4
    add r1, r1, r2
    mov32 r3, #0x0F0F0F0F
    and r1, r1, r3            ; bytes
    mov32 r3, #0x01010101
    mul r1, r1, r3
    lsr r1, r1, #24           ; horizontal sum
    add r6, r6, r1
    add r5, r5, #1
    cmp r5, #{WORDS}
    blt m3_words
    ldr r0, =GPIO
    str r6, [r0, #8]          ; GPIO2 = branch-free total
    bkpt

.rodata
words:
{_word_lines()}
"""


def reference(seed: int = 37) -> dict:
    total = sum(bin(v).count("1") for v in word_values(seed))
    return {"shift": total, "kernighan": total, "parallel": total}


def make() -> Workload:
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        return [(GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {"shift": gpio.latches[0], "kernighan": gpio.latches[1],
               "parallel": gpio.latches[2]}
        assert got == expected, f"bitcount mismatch: {got} != {expected}"

    return Workload(
        name="bitcount",
        description="BEEBs bitcount: three popcount algorithms",
        source=SOURCE,
        devices=devices,
        check=check,
    )
