"""Pocket Geiger counter firmware (paper workload: 'Geiger').

Profile: long *fixed* delay loops dominate execution (statically
deterministic for RAP-Track, so untracked), punctuated by rare
data-dependent pulse handling. This is the paper's high end of the
naive-MTB blow-up: the naive trace records every delay iteration.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GEIGER_BASE, GPIO_BASE, Workload
from repro.workloads.peripherals import GeigerTube, GPIOPort

WINDOWS = 60
DELAY_ITERS = 250
CPM_SHIFT = 2  # scaled counts-per-minute = count << 2


SOURCE = f"""
; Pocket Geiger: sample pulse counts over fixed windows, histogram
; activity, publish totals.
.equ GEIGER, {GEIGER_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =GEIGER
    ldr r7, =GPIO
    mov r5, #0                ; window index
    mov r6, #0                ; previous cumulative count

window_loop:
    ; fixed sampling-window delay (statically deterministic loop)
    mov r0, #{DELAY_ITERS}
delay_loop:
    sub r0, r0, #1
    cmp r0, #0
    bgt delay_loop

    ldr r1, [r4]              ; cumulative pulse count
    sub r2, r1, r6            ; pulses in this window
    mov r6, r1
    cmp r2, #0                ; any activity?
    beq no_pulse
    ldr r3, [r7, #8]
    add r3, r3, #1
    str r3, [r7, #8]          ; GPIO2 = active windows
    cmp r2, #2                ; burst (2+ pulses in one window)?
    blt no_pulse
    ldr r3, [r7, #16]
    add r3, r3, #1
    str r3, [r7, #16]         ; GPIO4 = burst windows
no_pulse:
    add r5, r5, #1
    cmp r5, #{WINDOWS}
    blt window_loop

    str r6, [r7]              ; GPIO0 = total pulses
    lsl r0, r6, #{CPM_SHIFT}
    str r0, [r7, #12]         ; GPIO3 = scaled CPM
    bkpt
"""


def reference(tube: GeigerTube) -> dict:
    counts = tube.expected_counts(WINDOWS)
    deltas = [b - a for a, b in zip([0] + counts, counts)]
    return {
        "total": counts[-1],
        "active": sum(1 for d in deltas if d > 0),
        "bursts": sum(1 for d in deltas if d >= 2),
        "cpm": counts[-1] << CPM_SHIFT,
    }


def make() -> Workload:
    tube = GeigerTube(seed=11)
    gpio = GPIOPort()

    def devices():
        tube.reset()
        gpio.reset()
        return [(GEIGER_BASE, tube, "geiger"), (GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference(GeigerTube(seed=11))
        got = {
            "total": gpio.latches[0],
            "active": gpio.latches[2],
            "bursts": gpio.latches[4],
            "cpm": gpio.latches[3],
        }
        assert got == expected, f"geiger mismatch: {got} != {expected}"

    return Workload(
        name="geiger",
        description="Pocket Geiger: fixed sampling windows, rare pulses",
        source=SOURCE,
        devices=devices,
        check=check,
    )
