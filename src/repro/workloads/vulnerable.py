"""A deliberately vulnerable firmware for the attack demonstrations.

``read_input`` copies UART words into a fixed 4-word stack buffer with
no bounds check. A benign feed fits; the attack feed overflows the
buffer and overwrites the saved LR slot with the address of
``maintenance_unlock`` — a privileged routine the benign control flow
never reaches. Because the return executes through the MTBAR pop stub,
the MTB records the hijacked destination, and the Verifier's shadow
call stack flags it as ``rop-return`` evidence (paper section IV-F:
CFA produces evidence of the malicious path; it does not mask it).

Not part of the evaluation registry — used by the security tests and
the ``attack_detection`` example.
"""

from __future__ import annotations

import struct
from repro.asm.program import Image
from repro.workloads.base import GPIO_BASE, UART_BASE, Workload
from repro.workloads.peripherals import GPIOPort, UartRx

BUFFER_WORDS = 4

#: GPIO latch values the firmware publishes
STATUS_NORMAL = 0x600D
STATUS_UNLOCKED = 0xBAD


SOURCE = f"""
; A command receiver with a classic unchecked stack-buffer copy.
.equ UART, {UART_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{lr}}
    bl read_input
    ldr r1, =GPIO
    mov32 r0, #{STATUS_NORMAL}
    str r0, [r1]              ; GPIO0 = normal completion
    bkpt

; read_input: copy length-prefixed words from the UART into a
; {BUFFER_WORDS}-word stack buffer. No bounds check: the bug.
read_input:
    push {{r4, r5, lr}}
    sub sp, sp, #{4 * BUFFER_WORDS}
    ldr r4, =UART
    ldr r5, [r4, #4]          ; word count (attacker controlled)
    mov r2, #0                ; index
copy_loop:
    cmp r2, r5
    bge copy_done
    bl read_word
    lsl r1, r2, #2
    add r1, r1, sp
    str r0, [r1]              ; buffer[index] = word -- may overflow!
    add r2, r2, #1
    b copy_loop
copy_done:
    add sp, sp, #{4 * BUFFER_WORDS}
    pop {{r4, r5, pc}}

; read_word: assemble a little-endian word from four UART bytes
read_word:
    push {{r4, lr}}
    mov r0, #0
    mov r3, #0                ; shift
    mov r4, #0                ; byte counter
word_loop:
    ldr r1, =UART
    ldr r1, [r1, #4]
    lsl r1, r1, r3
    orr r0, r0, r1
    add r3, r3, #8
    add r4, r4, #1
    cmp r4, #4
    blt word_loop
    pop {{r4, pc}}

; maintenance_unlock: privileged routine -- never called legitimately.
maintenance_unlock:
    ldr r1, =GPIO
    mov32 r0, #{STATUS_UNLOCKED}
    str r0, [r1]              ; GPIO0 = unlocked!
    bkpt
"""


def benign_feed() -> bytes:
    """Three words: fits in the buffer."""
    words = [0x11111111, 0x22222222, 0x33333333]
    return bytes([len(words)]) + b"".join(
        struct.pack("<I", w) for w in words)


def attack_feed(image: Image) -> bytes:
    """Seven words: the last lands in the saved-LR slot.

    Stack layout inside ``read_input`` after the prologue::

        sp+0  .. sp+12   buffer[0..3]
        sp+16            saved r4
        sp+20            saved r5
        sp+24            saved lr      <- overwritten with the gadget
    """
    gadget = image.addr_of("maintenance_unlock")
    words = [0xDEADBEEF] * (BUFFER_WORDS + 2) + [gadget]
    return bytes([len(words)]) + b"".join(
        struct.pack("<I", w) for w in words)


def make() -> Workload:
    uart = UartRx(benign_feed())
    gpio = GPIOPort()

    def devices():
        gpio.reset()
        uart.reset()  # keeps whatever feed was installed via set_feed
        return [(UART_BASE, uart, "uart"), (GPIO_BASE, gpio, "gpio")]

    return Workload(
        name="vulnerable",
        description="stack-overflow firmware for the ROP demonstration",
        source=SOURCE,
        devices=devices,
        check=None,
    )
