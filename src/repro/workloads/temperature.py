"""Grove temperature-sensor firmware (paper workload: 'Temperature').

Profile: fixed sampling/averaging loops (statically deterministic for
RAP-Track), a per-sample classification loop dense with data-dependent
conditionals, and one variable smoothing delay (loop-opt candidate).
This is the paper's low naive-vs-optimized CFLog-ratio end: most of the
log is conditionals that *every* method records.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import ADC_BASE, GPIO_BASE, Workload
from repro.workloads.peripherals import ADCDevice, GPIOPort

SAMPLES = 16
COLD_LIMIT = 260
HOT_LIMIT = 290

SOURCE = f"""
; Grove temperature sensor: sample, average, classify, publish.
.equ ADC, {ADC_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =samples
    ldr r7, =GPIO
    ldr r6, =ADC

    ; ---- sample {SAMPLES} ADC readings (fixed loop) ----
    mov r5, #0
sample_loop:
    ldr r1, [r6]
    str r1, [r4, r5, lsl #2]
    add r5, r5, #1
    cmp r5, #{SAMPLES}
    blt sample_loop

    ; ---- average (fixed loop) ----
    mov r5, #0
    mov r6, #0
avg_loop:
    ldr r1, [r4, r5, lsl #2]
    add r6, r6, r1
    add r5, r5, #1
    cmp r5, #{SAMPLES}
    blt avg_loop
    lsr r6, r6, #4
    str r6, [r7]              ; GPIO0 = average

    ; ---- classify every sample (data-dependent conditionals) ----
    mov r5, #0
    mov r0, #0                ; cold count
    mov r2, #0                ; ok count
    mov r3, #0                ; hot count
class_loop:
    ldr r1, [r4, r5, lsl #2]
    cmp r1, #{COLD_LIMIT}
    blt is_cold
    cmp r1, #{HOT_LIMIT}
    bgt is_hot
    add r2, r2, #1
    b class_next
is_cold:
    add r0, r0, #1
    b class_next
is_hot:
    add r3, r3, #1
class_next:
    add r5, r5, #1
    cmp r5, #{SAMPLES}
    blt class_loop
    str r0, [r7, #4]          ; GPIO1 = cold
    str r2, [r7, #8]          ; GPIO2 = ok
    str r3, [r7, #12]         ; GPIO3 = hot

    ; ---- data-dependent settle delay (loop-opt candidate) ----
    ; the callee address is materialized into a register (compiler
    ; idiom): an indirect call with exactly one provable target, which
    ; the value-set analysis devirtualizes
    mov r0, r6
    ldr r1, =settle
    blx r1
    str r0, [r7, #16]         ; GPIO4 = settle ticks
    bkpt

; settle(avg) -> ticks: spin (avg & 15) + 1 times
settle:
    and r1, r0, #15
    add r1, r1, #1
    mov r0, #0
settle_loop:
    add r0, r0, #1
    sub r1, r1, #1
    cmp r1, #0
    bgt settle_loop
    bx lr

.data
samples:
    .space {4 * SAMPLES}
"""


def reference(adc: ADCDevice) -> dict:
    """Python model of the firmware's outputs."""
    samples = adc.expected_samples(SAMPLES)
    average = sum(samples) // SAMPLES
    cold = sum(1 for s in samples if s < COLD_LIMIT)
    hot = sum(1 for s in samples if s > HOT_LIMIT)
    ok = SAMPLES - cold - hot
    settle = (average & 15) + 1
    return {"average": average, "cold": cold, "ok": ok, "hot": hot,
            "settle": settle}


def make() -> Workload:
    adc = ADCDevice(seed=7)
    gpio = GPIOPort()

    def devices():
        adc.reset()
        gpio.reset()
        return [(ADC_BASE, adc, "adc"), (GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference(ADCDevice(seed=7))
        got = {
            "average": gpio.latches[0],
            "cold": gpio.latches[1],
            "ok": gpio.latches[2],
            "hot": gpio.latches[3],
            "settle": gpio.latches[4],
        }
        assert got == expected, f"temperature mismatch: {got} != {expected}"

    return Workload(
        name="temperature",
        description="Grove temperature sensor: sample/average/classify",
        source=SOURCE,
        devices=devices,
        check=check,
    )
