"""Workload plumbing: sources, peripherals, and correctness checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.asm import assemble, link
from repro.asm.program import Image, Module
from repro.machine.mcu import MCU
from repro.machine.mmio import MMIODevice

# MMIO window assignments (one per peripheral class)
ADC_BASE = 0x4000_0000
GEIGER_BASE = 0x4000_0100
ULTRASONIC_BASE = 0x4000_0200
UART_BASE = 0x4000_0300
STEPPER_BASE = 0x4000_0400
GPIO_BASE = 0x4000_0500


@dataclass
class Workload:
    """One runnable evaluation application."""

    name: str
    description: str
    source: str
    #: factory returning fresh (base, device, name) attachments
    devices: Callable[[], List[Tuple[int, MMIODevice, str]]] = lambda: []
    #: correctness oracle, raises AssertionError on wrong results
    check: Optional[Callable[[MCU], None]] = None
    max_instructions: int = 2_000_000

    def module(self) -> Module:
        return assemble(self.source)


def build_image(workload: Workload) -> Image:
    """Assemble and link the workload's unmodified binary."""
    return link(workload.module())


def make_mcu(image: Image, workload: Workload,
             enable_jit: Optional[bool] = None) -> MCU:
    """Instantiate an MCU with the workload's peripherals attached.

    ``enable_jit`` is forwarded to :class:`~repro.machine.mcu.MCU`;
    ``None`` keeps the process-wide default (on, unless ``REPRO_JIT``
    disables it).
    """
    mcu = MCU(image, max_instructions=workload.max_instructions,
              enable_jit=enable_jit)
    for base, device, name in workload.devices():
        mcu.attach_device(base, device, name)
    return mcu
