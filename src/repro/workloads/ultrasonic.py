"""Grove ultrasonic ranger firmware (paper workload: 'Ultrasonic').

Profile: a HC-SR04-style driver that busy-waits for the echo with a
duration proportional to distance. Those data-dependent delay loops are
simple in the paper's sense, so RAP-Track's loop optimization replaces
hundreds of per-iteration records with one logged condition per ping —
this is one of the two workloads the paper calls out as a loop-opt
showcase (section V-B).
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, ULTRASONIC_BASE, Workload
from repro.workloads.peripherals import GPIOPort, UltrasonicRanger

PINGS = 10
ALARM_CM = 10
ECHO_SHIFT = 5  # busy-wait iterations = echo_us >> 5 (+1)


SOURCE = f"""
; HC-SR04 ultrasonic ranger: ping, busy-wait the echo, convert, track.
.equ SONAR, {ULTRASONIC_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =SONAR
    ldr r7, =GPIO
    mov r5, #0                ; ping index
    mov32 r6, #100000         ; running minimum distance

ping_loop:
    mov r0, #1
    str r0, [r4]              ; fire the ping
    ldr r0, [r4, #4]          ; echo round-trip time (us)

    ; busy-wait proportional to the echo (data-dependent simple loop)
    lsr r1, r0, #{ECHO_SHIFT}
    add r1, r1, #1
echo_wait:
    sub r1, r1, #1
    cmp r1, #0
    bgt echo_wait

    mov r2, #58               ; HC-SR04: us / 58 = cm
    udiv r0, r0, r2
    ldr r2, =dists
    str r0, [r2, r5, lsl #2]

    cmp r0, r6                ; track minimum
    bge not_min
    mov r6, r0
not_min:
    cmp r0, #{ALARM_CM}       ; proximity alarm
    bge no_alarm
    ldr r2, [r7, #8]
    add r2, r2, #1
    str r2, [r7, #8]          ; GPIO2 = alarm count
no_alarm:
    add r5, r5, #1
    cmp r5, #{PINGS}
    blt ping_loop

    ; average distance (fixed loop)
    mov r5, #0
    mov r0, #0
    ldr r2, =dists
avg_loop:
    ldr r1, [r2, r5, lsl #2]
    add r0, r0, r1
    add r5, r5, #1
    cmp r5, #{PINGS}
    blt avg_loop
    mov r1, #{PINGS}
    udiv r0, r0, r1
    str r0, [r7, #12]         ; GPIO3 = average
    str r6, [r7, #4]          ; GPIO1 = minimum
    ldr r2, =dists
    ldr r1, [r2, #{4 * (PINGS - 1)}]
    str r1, [r7]              ; GPIO0 = last distance
    bkpt

.data
dists:
    .space {4 * PINGS}
"""


def reference(ranger: UltrasonicRanger) -> dict:
    distances = ranger.expected_distances(PINGS)
    return {
        "last": distances[-1],
        "minimum": min(distances),
        "alarms": sum(1 for d in distances if d < ALARM_CM),
        "average": sum(distances) // PINGS,
    }


def make() -> Workload:
    ranger = UltrasonicRanger(seed=13)
    gpio = GPIOPort()

    def devices():
        ranger.reset()
        gpio.reset()
        return [(ULTRASONIC_BASE, ranger, "sonar"), (GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference(UltrasonicRanger(seed=13))
        got = {
            "last": gpio.latches[0],
            "minimum": gpio.latches[1],
            "alarms": gpio.latches[2],
            "average": gpio.latches[3],
        }
        assert got == expected, f"ultrasonic mismatch: {got} != {expected}"
        assert ranger.pings == PINGS

    return Workload(
        name="ultrasonic",
        description="HC-SR04 ultrasonic ranger with echo busy-waits",
        source=SOURCE,
        devices=devices,
        check=check,
    )
