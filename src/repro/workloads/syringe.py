"""OpenSyringePump firmware (paper workload: 'Syringe Pump').

Profile: a UART command interpreter dispatching through a jump table
(``ldr pc`` — an indirect jump RAP-Track must trampoline) into motor
routines whose stepping loops are data-dependent *simple* loops — the
paper's second loop-optimization showcase (section V-B): one logged
condition replaces hundreds of per-step records.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, STEPPER_BASE, UART_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG, StepperMotor, UartRx

STEPS_PER_UNIT = 20
PRIME_STEPS = 50
COMMANDS = 8

CMD_DISPENSE = 1
CMD_WITHDRAW = 2
CMD_PRIME = 3


def command_feed(seed: int = 17) -> List[Tuple[int, int]]:
    """The deterministic command script: (cmd, amount) pairs.

    Command 4 appears occasionally and is invalid (bounds-check path).
    """
    rng = LCG(seed)
    return [(rng.randint(1, 4), rng.randint(1, 9)) for _ in range(COMMANDS)]


def feed_bytes(seed: int = 17) -> bytes:
    return bytes(b for pair in command_feed(seed) for b in pair)


SOURCE = f"""
; OpenSyringePump: consume (cmd, amount) pairs, drive the stepper.
.equ UART, {UART_BASE:#x}
.equ STEPPER, {STEPPER_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =UART
    ldr r5, =STEPPER
    ldr r7, =GPIO

cmd_loop:
    ldr r0, [r4]              ; UART status
    cmp r0, #0
    beq all_done              ; no more commands
    ldr r0, [r4, #4]          ; command byte
    ldr r1, [r4, #4]          ; amount byte
    cmp r0, #{CMD_PRIME}
    bgt bad_cmd               ; bounds check the jump-table index
    cmp r0, #{CMD_DISPENSE}
    blt bad_cmd
    ldr r2, =cmd_table
    ldr pc, [r2, r0, lsl #2]  ; switch dispatch (indirect jump)

bad_cmd:
    ldr r3, [r7, #8]
    add r3, r3, #1
    str r3, [r7, #8]          ; GPIO2 = rejected commands
    b cmd_done

cmd_dispense:
    mov r2, #0
    str r2, [r5, #4]          ; DIR = dispense
    mov r2, #{STEPS_PER_UNIT}
    mul r1, r1, r2
    bl do_steps
    b cmd_done

cmd_withdraw:
    mov r2, #1
    str r2, [r5, #4]          ; DIR = withdraw
    mov r2, #{STEPS_PER_UNIT}
    mul r1, r1, r2
    bl do_steps
    b cmd_done

cmd_prime:
    mov r2, #0
    str r2, [r5, #4]
    mov r1, #{PRIME_STEPS}
    ldr r3, =do_steps         ; register-materialized callee: provably
    blx r3                    ; single-target, devirtualized
    b cmd_done

cmd_done:
    ldr r3, [r7]
    add r3, r3, #1
    str r3, [r7]              ; GPIO0 = commands processed
    b cmd_loop

all_done:
    ldr r0, [r5, #8]          ; final stepper position
    str r0, [r7, #4]          ; GPIO1 = position
    bkpt

; do_steps(r1 = steps): pulse the motor r1 times (simple loop)
do_steps:
    cmp r1, #0
    beq steps_done
step_loop:
    mov r0, #1
    str r0, [r5]              ; STEP pulse
    sub r1, r1, #1
    cmp r1, #0
    bgt step_loop
steps_done:
    bx lr

.rodata
cmd_table:
    .word bad_cmd
    .word cmd_dispense
    .word cmd_withdraw
    .word cmd_prime
"""


def reference(seed: int = 17) -> dict:
    position = 0
    rejected = 0
    for cmd, amount in command_feed(seed):
        if cmd == CMD_DISPENSE:
            position += amount * STEPS_PER_UNIT
        elif cmd == CMD_WITHDRAW:
            position -= amount * STEPS_PER_UNIT
        elif cmd == CMD_PRIME:
            position += PRIME_STEPS
        else:
            rejected += 1
    return {
        "processed": COMMANDS,
        "position": position & 0xFFFFFFFF,
        "rejected": rejected,
    }


def make() -> Workload:
    uart = UartRx(feed_bytes())
    stepper = StepperMotor()
    gpio = GPIOPort()

    def devices():
        uart.reset()
        stepper.reset()
        gpio.reset()
        return [
            (UART_BASE, uart, "uart"),
            (STEPPER_BASE, stepper, "stepper"),
            (GPIO_BASE, gpio, "gpio"),
        ]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {
            "processed": gpio.latches[0],
            "position": gpio.latches[1],
            "rejected": gpio.latches[2],
        }
        assert got == expected, f"syringe mismatch: {got} != {expected}"
        assert stepper.position & 0xFFFFFFFF == expected["position"]

    return Workload(
        name="syringe",
        description="OpenSyringePump: jump-table commands, stepper loops",
        source=SOURCE,
        devices=devices,
        check=check,
    )
