"""Synthetic peripheral models (the simulation's stand-in for Grove
sensors, a Geiger tube, a syringe stepper, and a GPS UART).

All randomness comes from a seeded LCG — runs are bit-reproducible and
independent of wall-clock time, which the benchmarks rely on.
"""

from __future__ import annotations

from typing import List

from repro.machine.faults import MemFault
from repro.machine.mmio import MMIODevice


class LCG:
    """A tiny deterministic pseudo-random stream (glibc constants)."""

    def __init__(self, seed: int):
        self.state = seed & 0x7FFFFFFF

    def next(self) -> int:
        self.state = (1103515245 * self.state + 12345) & 0x7FFFFFFF
        return self.state

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi]."""
        return lo + self.next() % (hi - lo + 1)

    def chance(self, numerator: int, denominator: int) -> bool:
        return self.next() % denominator < numerator


class ADCDevice(MMIODevice):
    """A sampling ADC: each DATA read returns the next seeded sample.

    Registers: ``0x00 DATA`` (read-to-sample), ``0x04 LAST`` (re-read).
    """

    DATA = 0x00
    LAST = 0x04

    def __init__(self, seed: int = 7, base_value: int = 250, spread: int = 60):
        self._seed = seed
        self.base_value = base_value
        self.spread = spread
        self.reset()

    def reset(self) -> None:
        self._rng = LCG(self._seed)
        self._last = self.base_value
        self.samples_read = 0

    def read(self, offset: int, size: int) -> int:
        if offset == self.DATA:
            self._last = self.base_value + self._rng.randint(0, self.spread)
            self.samples_read += 1
            return self._last
        if offset == self.LAST:
            return self._last
        raise MemFault("bad ADC register", offset)

    def expected_samples(self, count: int) -> List[int]:
        """Python reference of the first ``count`` samples."""
        rng = LCG(self._seed)
        return [self.base_value + rng.randint(0, self.spread)
                for _ in range(count)]


class GeigerTube(MMIODevice):
    """A pulse-counting Geiger tube front-end.

    The tube performs ``CHECKS_PER_READ`` seeded arrival checks per
    COUNT read (the sampling window), so pulse arrivals are a function
    of the *software's sampling pattern* rather than of cycle counts —
    keeping results identical across CFA methods whose runtimes differ.
    Registers: ``0x00 COUNT`` (read), ``0x04 RESET`` (write clears).
    """

    COUNT = 0x00
    RESET = 0x04
    CHECKS_PER_READ = 8

    def __init__(self, seed: int = 11, rate_per_1024: int = 60):
        self._seed = seed
        self.rate_per_1024 = rate_per_1024
        self.reset()

    def reset(self) -> None:
        self._rng = LCG(self._seed)
        self.count = 0

    def read(self, offset: int, size: int) -> int:
        if offset == self.COUNT:
            for _ in range(self.CHECKS_PER_READ):
                if self._rng.chance(self.rate_per_1024, 1024):
                    self.count += 1
            return self.count
        raise MemFault("bad Geiger register", offset)

    def write(self, offset: int, value: int, size: int) -> None:
        if offset == self.RESET:
            self.count = 0
            return
        raise MemFault("bad Geiger register", offset)

    def expected_counts(self, reads: int) -> List[int]:
        """Python reference of the COUNT value seen by each read."""
        rng = LCG(self._seed)
        count = 0
        out = []
        for _ in range(reads):
            for _ in range(self.CHECKS_PER_READ):
                if rng.chance(self.rate_per_1024, 1024):
                    count += 1
            out.append(count)
        return out


class UltrasonicRanger(MMIODevice):
    """A Grove-style ultrasonic ranger with an echo timer.

    Write ``0x00 TRIGGER`` to fire a ping; read ``0x04 ECHO_US`` for the
    round-trip time in microseconds (seeded per measurement).
    Echo time = distance_cm * 58 (the HC-SR04 constant).
    """

    TRIGGER = 0x00
    ECHO_US = 0x04

    def __init__(self, seed: int = 13, min_cm: int = 5, max_cm: int = 120):
        self._seed = seed
        self.min_cm = min_cm
        self.max_cm = max_cm
        self.reset()

    def reset(self) -> None:
        self._rng = LCG(self._seed)
        self._echo = 0
        self.pings = 0

    def write(self, offset: int, value: int, size: int) -> None:
        if offset == self.TRIGGER:
            distance = self._rng.randint(self.min_cm, self.max_cm)
            self._echo = distance * 58
            self.pings += 1
            return
        raise MemFault("bad ultrasonic register", offset)

    def read(self, offset: int, size: int) -> int:
        if offset == self.ECHO_US:
            return self._echo
        raise MemFault("bad ultrasonic register", offset)

    def expected_distances(self, count: int) -> List[int]:
        rng = LCG(self._seed)
        return [rng.randint(self.min_cm, self.max_cm) for _ in range(count)]


class UartRx(MMIODevice):
    """A receive-only UART fed from a fixed byte script.

    Registers: ``0x00 STATUS`` (bit0: data ready), ``0x04 DATA``
    (read consumes one byte; 0 when empty).
    """

    STATUS = 0x00
    DATA = 0x04

    def __init__(self, feed: bytes):
        self._feed = bytes(feed)
        self.reset()

    def reset(self) -> None:
        self._cursor = 0

    def set_feed(self, feed: bytes) -> None:
        """Replace the byte script (used by the attack demonstrations)."""
        self._feed = bytes(feed)
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self._feed) - self._cursor

    def read(self, offset: int, size: int) -> int:
        if offset == self.STATUS:
            return 1 if self._cursor < len(self._feed) else 0
        if offset == self.DATA:
            if self._cursor >= len(self._feed):
                return 0
            byte = self._feed[self._cursor]
            self._cursor += 1
            return byte
        raise MemFault("bad UART register", offset)


class StepperMotor(MMIODevice):
    """A syringe-pump stepper driver.

    Registers: ``0x00 STEP`` (write pulses one step in the current
    direction), ``0x04 DIR`` (0 = dispense, 1 = withdraw),
    ``0x08 POS`` (read absolute position).
    """

    STEP = 0x00
    DIR = 0x04
    POS = 0x08

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.position = 0
        self.direction = 0
        self.total_steps = 0

    def write(self, offset: int, value: int, size: int) -> None:
        if offset == self.STEP:
            self.position += -1 if self.direction else 1
            self.total_steps += 1
            return
        if offset == self.DIR:
            self.direction = value & 1
            return
        raise MemFault("bad stepper register", offset)

    def read(self, offset: int, size: int) -> int:
        if offset == self.POS:
            return self.position & 0xFFFFFFFF
        raise MemFault("bad stepper register", offset)


class GPIOPort(MMIODevice):
    """A write-latched output port, used by workloads to publish results
    the test oracles read back.

    Registers: ``0x00..0x3C`` — sixteen 32-bit output latches.
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.latches = [0] * 16

    def write(self, offset: int, value: int, size: int) -> None:
        if 0 <= offset < 0x40 and offset % 4 == 0:
            self.latches[offset // 4] = value
            return
        raise MemFault("bad GPIO register", offset)

    def read(self, offset: int, size: int) -> int:
        if 0 <= offset < 0x40 and offset % 4 == 0:
            return self.latches[offset // 4]
        raise MemFault("bad GPIO register", offset)
