"""TinyGPS-style NMEA parser (paper workload: 'GPS').

Profile: a character-at-a-time parser — the densest control flow of the
suite. Every input byte runs a cascade of data-dependent comparisons,
field boundaries dispatch through a function-pointer table (indirect
calls + stack returns), and the scan loop itself is a silent-cycle case
that exercises the UNCOND_LATCH trampolines. Instrumentation-based CFA
pays a world switch for nearly every byte; RAP-Track logs the same
events through the MTB in parallel.
"""

from __future__ import annotations

from repro.machine.mcu import MCU
from repro.workloads.base import GPIO_BASE, UART_BASE, Workload
from repro.workloads.peripherals import GPIOPort, LCG, UartRx

SENTENCES = 3


def nmea_feed(seed: int = 19) -> str:
    """Deterministic pseudo-NMEA sentences: $GPGGA,time,lat,lon,alt*"""
    rng = LCG(seed)
    out = []
    for _ in range(SENTENCES):
        time = rng.randint(0, 235959)
        lat = rng.randint(1000, 8999)
        lon = rng.randint(1000, 17999)
        alt = rng.randint(1, 4000)
        out.append(f"$GPGGA,{time},{lat},{lon},{alt}*\n")
    return "".join(out)


SOURCE = f"""
; TinyGPS-like NMEA parser: per-character state machine with a
; function-pointer field-handler table.
.equ UART, {UART_BASE:#x}
.equ GPIO, {GPIO_BASE:#x}

.entry main
main:
    push {{r4, r5, r6, r7, lr}}
    ldr r4, =UART
    ldr r7, =GPIO
    mov r5, #0                ; field value accumulator
    mov r6, #0                ; field index

char_loop:
    ldr r0, [r4]              ; UART status
    cmp r0, #0
    beq parse_done
    ldr r0, [r4, #4]          ; next character
    cmp r0, #36               ; '$' starts a sentence
    beq start_sentence
    cmp r0, #44               ; ',' ends a field
    beq field_end
    cmp r0, #42               ; '*' ends the last field
    beq field_end
    cmp r0, #10               ; '\\n' ends the sentence
    beq sentence_end
    cmp r0, #48               ; below '0': ignore
    blt char_loop
    cmp r0, #57               ; above '9' (talker letters): ignore
    bgt char_loop
    mov r1, #10               ; value = value * 10 + digit
    mul r5, r5, r1
    sub r0, r0, #48
    add r5, r5, r0
    b char_loop

start_sentence:
    mov r5, #0
    mov r6, #0
    b char_loop

field_end:
    bl dispatch_field
    b char_loop

sentence_end:
    ldr r0, =publish_fix      ; single-target indirect call: the
    blx r0                    ; value-set analysis devirtualizes it
    b char_loop

parse_done:
    bkpt

; dispatch_field: handlers[field](value), reset value, next field
dispatch_field:
    push {{lr}}
    cmp r6, #4
    bgt skip_field            ; fields past the table are ignored
    ldr r1, =field_handlers
    ldr r2, [r1, r6, lsl #2]
    mov r0, r5
    blx r2
skip_field:
    mov r5, #0
    add r6, r6, #1
    pop {{pc}}

publish_fix:                  ; bump the parsed-sentence counter
    ldr r1, [r7, #12]
    add r1, r1, #1
    str r1, [r7, #12]         ; GPIO3 = sentences parsed
    bx lr

field_talker:                 ; field 0: "GPGGA" (no digits)
    bx lr
field_time:                   ; field 1: fix time
    str r0, [r7, #16]         ; GPIO4 = time
    bx lr
field_lat:
    str r0, [r7]              ; GPIO0 = latitude
    bx lr
field_lon:
    str r0, [r7, #4]          ; GPIO1 = longitude
    bx lr
field_alt:
    str r0, [r7, #8]          ; GPIO2 = altitude
    bx lr

.rodata
field_handlers:
    .word field_talker
    .word field_time
    .word field_lat
    .word field_lon
    .word field_alt
"""


def reference(seed: int = 19) -> dict:
    """Python model mirroring the assembly parser exactly."""
    lat = lon = alt = time = 0
    sentences = 0
    value = 0
    field = 0
    for ch in nmea_feed(seed):
        if ch == "$":
            value, field = 0, 0
        elif ch in (",", "*"):
            if field == 1:
                time = value
            elif field == 2:
                lat = value
            elif field == 3:
                lon = value
            elif field == 4:
                alt = value
            value = 0
            field += 1
        elif ch == "\n":
            sentences += 1
        elif "0" <= ch <= "9":
            value = value * 10 + ord(ch) - ord("0")
    return {"lat": lat, "lon": lon, "alt": alt, "time": time,
            "sentences": sentences}


def make() -> Workload:
    uart = UartRx(nmea_feed().encode())
    gpio = GPIOPort()

    def devices():
        uart.reset()
        gpio.reset()
        return [(UART_BASE, uart, "uart"), (GPIO_BASE, gpio, "gpio")]

    def check(mcu: MCU) -> None:
        expected = reference()
        got = {
            "lat": gpio.latches[0],
            "lon": gpio.latches[1],
            "alt": gpio.latches[2],
            "time": gpio.latches[4],
            "sentences": gpio.latches[3],
        }
        assert got == expected, f"gps mismatch: {got} != {expected}"

    return Workload(
        name="gps",
        description="TinyGPS-like NMEA parser: per-char state machine",
        source=SOURCE,
        devices=devices,
        check=check,
    )
