"""The evaluation applications.

The same ten applications the paper evaluates (section I / V): five
real-world MCU firmwares — ultrasonic ranger, temperature sensor,
Geiger counter, syringe pump, GPS — and five BEEBs benchmarks — prime,
crc32, bubblesort, fibcall, matmult — re-implemented for the simulated
ISA and driven by seeded synthetic peripherals (DESIGN.md section 2).

Each workload carries a Python reference model used by the test suite
to check that the assembly computes the right answer on the simulator,
independent of any CFA machinery.
"""

from repro.workloads.base import Workload, build_image, make_mcu
from repro.workloads import (
    temperature,
    ultrasonic,
    geiger,
    syringe,
    gps,
)
from repro.workloads import vulnerable
from repro.workloads.beebs import (
    bitcount,
    bubblesort,
    crc32,
    dijkstra,
    fibcall,
    fir,
    insertsort,
    matmult,
    prime,
    strsearch,
)

#: name -> zero-argument factory returning a fresh Workload
WORKLOADS = {
    "temperature": temperature.make,
    "ultrasonic": ultrasonic.make,
    "geiger": geiger.make,
    "syringe": syringe.make,
    "gps": gps.make,
    "prime": prime.make,
    "crc32": crc32.make,
    "bubblesort": bubblesort.make,
    "fibcall": fibcall.make,
    "matmult": matmult.make,
    "bitcount": bitcount.make,
    "insertsort": insertsort.make,
    "strsearch": strsearch.make,
    "dijkstra": dijkstra.make,
    "fir": fir.make,
}


#: demonstration firmwares: attestable by name (e.g. by the fleet
#: simulator's attack devices) but excluded from the evaluation grid
DEMO_WORKLOADS = {
    "vulnerable": vulnerable.make,
}


def load_workload(name: str) -> Workload:
    """Instantiate a fresh workload (new peripheral state) by name."""
    factory = WORKLOADS.get(name) or DEMO_WORKLOADS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{sorted(WORKLOADS) + sorted(DEMO_WORKLOADS)}"
        )
    return factory()


__all__ = ["Workload", "WORKLOADS", "DEMO_WORKLOADS", "load_workload",
           "build_image", "make_mcu"]
