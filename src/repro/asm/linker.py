"""Layout and symbol resolution: Module -> Image.

The linker assigns every section a base address from the platform memory
map, lays items out contiguously, resolves labels, and materialises the
data image. Re-linking after the RAP-Track rewriter moves instructions is
what keeps trampoline targets consistent (DESIGN.md section 2).
"""

from __future__ import annotations

import struct
from typing import Dict, Optional

from repro.asm.program import (
    DATA,
    MTBAR,
    RODATA,
    TEXT,
    DataBytes,
    DataWord,
    Image,
    Instr,
    LinkedItem,
    Module,
    Space,
)
from repro.isa.operands import Label

#: Default platform memory map (see repro.machine.memmap for the full map).
DEFAULT_LAYOUT: Dict[str, int] = {
    TEXT: 0x0020_0000,
    MTBAR: 0x0030_0000,
    RODATA: 0x0040_0000,
    DATA: 0x2000_0000,
}


class LinkError(Exception):
    """Unresolved symbols or overlapping/overflowing sections."""


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def link(module: Module, layout: Optional[Dict[str, int]] = None) -> Image:
    """Assign addresses and resolve all labels, producing an Image."""
    layout = dict(DEFAULT_LAYOUT, **(layout or {}))
    image = Image(module.entry)
    image.equates = dict(module.equates)

    # first pass: place items, define symbols
    for name, section in module.sections.items():
        if name not in layout:
            raise LinkError(f"no base address for section {name!r}")
        cursor = layout[name]
        base = cursor
        for item in section.items:
            if isinstance(item.payload, Instr):
                cursor = _align(cursor, 2)
            for label in item.labels:
                if label in image.symbols:
                    raise LinkError(f"duplicate symbol: {label}")
                image.symbols[label] = cursor
            image.items.append(LinkedItem(cursor, item.payload, name, item.labels))
            cursor += item.payload.size
        image.section_ranges[name] = (base, cursor)

    # overlap check
    ranges = sorted(image.section_ranges.values())
    for (lo1, hi1), (lo2, _hi2) in zip(ranges, ranges[1:]):
        if hi1 > lo2:
            raise LinkError("sections overlap in the memory map")

    # second pass: index instructions and materialise the data image
    for linked in image.items:
        payload = linked.payload
        if isinstance(payload, Instr):
            image.instr_at[linked.address] = payload
        elif isinstance(payload, DataWord):
            value = payload.value
            if isinstance(value, Label):
                try:
                    value = image.addr_of(value.name)
                except KeyError as exc:
                    raise LinkError(str(exc)) from exc
            for i, byte in enumerate(struct.pack("<I", value & 0xFFFFFFFF)):
                image.data_bytes[linked.address + i] = byte
        elif isinstance(payload, DataBytes):
            for i, byte in enumerate(payload.data):
                image.data_bytes[linked.address + i] = byte
        elif isinstance(payload, Space):
            for i in range(payload.length):
                image.data_bytes[linked.address + i] = 0

    # entry and reference validation
    if module.entry not in image.symbols:
        raise LinkError(f"entry symbol {module.entry!r} is undefined")
    _validate_references(image)
    return image


def _validate_references(image: Image) -> None:
    """Every Label operand must resolve to a symbol or equate."""
    for addr, instr in image.instr_at.items():
        for op in instr.operands:
            if isinstance(op, Label):
                try:
                    image.addr_of(op.name)
                except KeyError:
                    raise LinkError(
                        f"undefined symbol {op.name!r} referenced at {addr:#x}"
                    ) from None
