"""Front-door assembly helper."""

from __future__ import annotations

from typing import Optional

from repro.asm.linker import DEFAULT_LAYOUT, link
from repro.asm.parser import parse_source
from repro.asm.program import Image, Module


def assemble(source: str, entry: Optional[str] = None) -> Module:
    """Assemble source text into a relocatable :class:`Module`.

    ``entry`` overrides any ``.entry`` directive in the source.
    """
    module = parse_source(source)
    if entry is not None:
        module.entry = entry
    return module


def assemble_and_link(source: str, entry: Optional[str] = None, layout=None) -> Image:
    """One-step convenience: parse and link with the default memory layout."""
    module = assemble(source, entry)
    return link(module, layout or DEFAULT_LAYOUT)
