"""Line-oriented parser for the ARM-like assembly dialect.

Supported syntax (one statement per line, ``;`` / ``//`` / ``@`` comments)::

    .text | .mtbar | .data | .rodata | .section NAME
    .entry LABEL
    .equ NAME, VALUE
    .word VALUE-or-LABEL
    .byte B0, B1, ...
    .ascii "text"
    .space N
    label:
        mov   r0, #5
        ldr   r1, [r0, #4]
        ldr   r2, [r3, r4, lsl #2]
        ldr   r5, =some_label      ; address-of pseudo (-> adr)
        push  {r4-r7, lr}
        pop   {r4-r7, pc}
        beq   target
        bl    func
        blx   r3
        bx    lr
        svc   #1
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.conditions import ALIASES as COND_ALIASES
from repro.isa.conditions import CONDITIONS
from repro.isa.instructions import MNEMONICS, Instr, make_instr
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.isa.registers import parse_reg
from repro.asm.program import DataBytes, DataWord, Module, Space


class AsmSyntaxError(Exception):
    """A malformed assembly statement, annotated with its line number."""

    def __init__(self, message: str, line_no: int, line: str):
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _strip_comment(line: str) -> str:
    for marker in (";", "//", "@"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def parse_int(text: str) -> int:
    """Parse a decimal, hex (0x), binary (0b), or char ('c') literal."""
    text = text.strip()
    if len(text) == 3 and text[0] == "'" and text[2] == "'":
        return ord(text[1])
    return int(text, 0)


def _split_operands(text: str) -> List[str]:
    """Split an operand string on top-level commas."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[{":
            depth += 1
        elif ch in "]}":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _try_reg(token: str) -> Optional[Reg]:
    try:
        return Reg(parse_reg(token))
    except ValueError:
        return None


def _parse_reglist(token: str) -> RegList:
    inner = token[1:-1].strip()
    regs: List[int] = []
    if inner:
        for part in inner.split(","):
            part = part.strip()
            if "-" in part and not part.startswith("-"):
                lo_s, hi_s = part.split("-", 1)
                lo, hi = parse_reg(lo_s), parse_reg(hi_s)
                if hi < lo:
                    raise ValueError(f"bad register range: {part}")
                regs.extend(range(lo, hi + 1))
            else:
                regs.append(parse_reg(part))
    return RegList(tuple(regs))


def _parse_mem(token: str) -> Mem:
    inner = token[1:-1].strip()
    parts = [p.strip() for p in inner.split(",")]
    base = _try_reg(parts[0])
    if base is None:
        raise ValueError(f"bad base register in {token}")
    if len(parts) == 1:
        return Mem(base)
    if len(parts) == 2:
        second = parts[1]
        if second.startswith("#"):
            return Mem(base, offset=parse_int(second[1:]))
        index = _try_reg(second)
        if index is None:
            raise ValueError(f"bad index in {token}")
        return Mem(base, index=index)
    if len(parts) == 3:
        index = _try_reg(parts[1])
        shift_m = re.match(r"lsl\s+#(\d+)$", parts[2], re.IGNORECASE)
        if index is None or shift_m is None:
            raise ValueError(f"bad scaled index in {token}")
        return Mem(base, index=index, shift=int(shift_m.group(1)))
    raise ValueError(f"bad memory operand: {token}")


def parse_operand(token: str):
    """Parse one operand token into its object form."""
    token = token.strip()
    if token.startswith("#"):
        return Imm(parse_int(token[1:]))
    if token.startswith("["):
        return _parse_mem(token)
    if token.startswith("{"):
        return _parse_reglist(token)
    if token.startswith("="):
        # '=name' / '=imm' resolved by the assembler into adr/mov32
        body = token[1:].strip()
        try:
            return ("=imm", parse_int(body))
        except ValueError:
            return ("=label", body)
    reg = _try_reg(token)
    if reg is not None:
        return reg
    if _IDENT_RE.match(token):
        return Label(token)
    try:
        return Imm(parse_int(token))
    except ValueError:
        raise ValueError(f"cannot parse operand: {token!r}") from None


def split_mnemonic(word: str) -> Tuple[str, Optional[str]]:
    """Split a mnemonic word into (base, condition-suffix)."""
    low = word.lower()
    if low in MNEMONICS:
        return low, None
    # conditional forms are only defined for 'b'
    if low.startswith("b") and len(low) == 3:
        suffix = low[1:]
        suffix = COND_ALIASES.get(suffix, suffix)
        if suffix in CONDITIONS:
            return "b", suffix
    raise ValueError(f"unknown mnemonic: {word!r}")


def parse_statement(line: str) -> Tuple[str, Optional[str], List]:
    """Parse 'mnemonic op, op, ...' into (mnemonic, cond, operands)."""
    stripped = line.strip()
    if " " in stripped or "\t" in stripped:
        word, rest = re.split(r"\s+", stripped, maxsplit=1)
    else:
        word, rest = stripped, ""
    mnemonic, cond = split_mnemonic(word)
    operands = [parse_operand(tok) for tok in _split_operands(rest)] if rest else []
    return mnemonic, cond, operands


def _build_instr(mnemonic: str, cond: Optional[str], operands: List) -> List[Instr]:
    """Lower a parsed statement into concrete instructions, expanding the
    ``ldr rd, =x`` pseudo into ``adr``/``mov32``."""
    lowered = []
    pseudo = None
    for op in operands:
        if isinstance(op, tuple) and op and op[0] in ("=imm", "=label"):
            pseudo = op
            continue
        lowered.append(op)
    if pseudo is not None:
        if mnemonic not in ("ldr", "adr", "mov32"):
            raise ValueError("'=' operands are only valid with ldr/adr/mov32")
        dest = lowered[0]
        if pseudo[0] == "=label":
            return [make_instr("adr", dest, Label(pseudo[1]))]
        return [make_instr("mov32", dest, Imm(pseudo[1]))]
    return [make_instr(mnemonic, *lowered, cond=cond)]


_DIRECTIVES = {".text", ".mtbar", ".data", ".rodata", ".section", ".entry",
               ".equ", ".word", ".byte", ".ascii", ".space", ".global",
               ".align"}


def parse_source(source: str) -> Module:
    """Parse assembly source text into a relocatable :class:`Module`."""
    module = Module()
    current = module.section("text")
    pending_labels: List[str] = []

    def flush_into(payload):
        nonlocal pending_labels
        current.add(payload, tuple(pending_labels))
        pending_labels = []

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        # labels (possibly several, possibly followed by a statement)
        while True:
            m = _LABEL_RE.match(line)
            if not m:
                break
            name = m.group(1)
            if _try_reg(name) is not None:
                raise AsmSyntaxError(
                    f"label {name!r} shadows a register name", line_no, raw)
            pending_labels.append(name)
            line = line[m.end():].strip()
        if not line:
            continue
        try:
            if line.startswith("."):
                word = line.split(None, 1)[0].lower()
                rest = line[len(word):].strip()
                if word not in _DIRECTIVES:
                    raise ValueError(f"unknown directive: {word}")
                if word in (".text", ".mtbar", ".data", ".rodata", ".section"):
                    # labels pending at a section switch bind to the
                    # current position in the *current* section
                    if pending_labels:
                        flush_into(Space(0))
                    name = rest if word == ".section" else word[1:]
                    current = module.section(name)
                elif word == ".entry":
                    module.entry = rest
                elif word == ".equ":
                    name, value = _split_operands(rest)
                    module.equates[name] = parse_int(value)
                elif word == ".word":
                    for tok in _split_operands(rest):
                        try:
                            flush_into(DataWord(parse_int(tok)))
                        except ValueError:
                            flush_into(DataWord(Label(tok)))
                elif word == ".byte":
                    data = bytes(parse_int(t) & 0xFF for t in _split_operands(rest))
                    flush_into(DataBytes(data))
                elif word == ".ascii":
                    text = rest.strip()
                    if not (text.startswith('"') and text.endswith('"')):
                        raise ValueError(".ascii expects a quoted string")
                    flush_into(DataBytes(text[1:-1].encode()))
                elif word == ".space":
                    flush_into(Space(parse_int(rest)))
                elif word in (".global", ".align"):
                    pass  # accepted for source compatibility; no effect
            else:
                mnemonic, cond, operands = parse_statement(line)
                for instr in _build_instr(mnemonic, cond, operands):
                    flush_into(instr)
        except (ValueError, KeyError) as exc:
            raise AsmSyntaxError(str(exc), line_no, raw) from exc

    if pending_labels:
        # trailing labels bind to an empty reservation at section end
        current.add(Space(0), tuple(pending_labels))
    return module
