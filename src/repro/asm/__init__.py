"""Assembler toolchain: source text -> Module -> linked Image.

The RAP-Track offline phase (``repro.core``) rewrites a ``Module`` — the
label-relative instruction IR — and the linker re-lays addresses, which
mirrors the paper's post-compile binary rewriting with the relocation
bookkeeping handled symbolically.
"""

from repro.asm.program import (
    AsmItem,
    DataBytes,
    DataWord,
    Image,
    Module,
    Section,
    Space,
)
from repro.asm.parser import AsmSyntaxError, parse_source
from repro.asm.assembler import assemble
from repro.asm.linker import DEFAULT_LAYOUT, LinkError, link

__all__ = [
    "AsmItem",
    "DataWord",
    "DataBytes",
    "Space",
    "Section",
    "Module",
    "Image",
    "parse_source",
    "AsmSyntaxError",
    "assemble",
    "link",
    "LinkError",
    "DEFAULT_LAYOUT",
]
