"""Program object model: pre-link modules and post-link images."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.isa.encoding import encode_instr
from repro.isa.instructions import Instr
from repro.isa.operands import Label


@dataclass(frozen=True)
class DataWord:
    """A 32-bit literal or address word (``.word``)."""

    value: Union[int, Label]

    @property
    def size(self) -> int:
        return 4


@dataclass(frozen=True)
class DataBytes:
    """Raw bytes (``.byte`` / ``.ascii``)."""

    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class Space:
    """Zero-filled reservation (``.space``)."""

    length: int

    @property
    def size(self) -> int:
        return self.length


Payload = Union[Instr, DataWord, DataBytes, Space]


@dataclass
class AsmItem:
    """One positioned item: the labels bound to it plus its payload."""

    labels: Tuple[str, ...]
    payload: Payload

    @property
    def size(self) -> int:
        return self.payload.size


#: Section names with architectural meaning.
TEXT = "text"  # MTBDR after rewriting; the whole program before
MTBAR = "mtbar"  # MTB Activation Region (trampoline stubs)
RODATA = "rodata"  # flash constants (switch tables, strings)
DATA = "data"  # RAM-resident mutable data


@dataclass
class Section:
    """An ordered list of items destined for one memory region."""

    name: str
    items: List[AsmItem] = field(default_factory=list)

    def add(self, payload: Payload, labels: Tuple[str, ...] = ()) -> AsmItem:
        item = AsmItem(tuple(labels), payload)
        self.items.append(item)
        return item

    def instructions(self) -> Iterator[Instr]:
        for item in self.items:
            if isinstance(item.payload, Instr):
                yield item.payload

    def __len__(self) -> int:
        return len(self.items)


class Module:
    """A relocatable program: sections of labelled items plus an entry."""

    def __init__(self, entry: str = "main"):
        self.sections: Dict[str, Section] = {}
        self.entry = entry
        self.equates: Dict[str, int] = {}

    def section(self, name: str) -> Section:
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    @property
    def text(self) -> Section:
        return self.section(TEXT)

    @property
    def mtbar(self) -> Section:
        return self.section(MTBAR)

    def defined_labels(self) -> Dict[str, Tuple[str, int]]:
        """Map label -> (section name, item index)."""
        seen: Dict[str, Tuple[str, int]] = {}
        for name, sec in self.sections.items():
            for idx, item in enumerate(sec.items):
                for label in item.labels:
                    if label in seen:
                        raise ValueError(f"duplicate label: {label}")
                    seen[label] = (name, idx)
        return seen

    def copy(self) -> "Module":
        """A structural copy safe to rewrite (payloads are immutable)."""
        dup = Module(self.entry)
        dup.equates = dict(self.equates)
        for name, sec in self.sections.items():
            new = dup.section(name)
            for item in sec.items:
                new.add(item.payload, item.labels)
        return dup


@dataclass
class LinkedItem:
    """An item with its final address, exposed for analysis/display."""

    address: int
    payload: Payload
    section: str
    labels: Tuple[str, ...]


class Image:
    """A fully linked program ready to load into the machine."""

    def __init__(self, entry_symbol: str):
        self.entry_symbol = entry_symbol
        self.symbols: Dict[str, int] = {}
        self.instr_at: Dict[int, Instr] = {}
        self.items: List[LinkedItem] = []
        self.section_ranges: Dict[str, Tuple[int, int]] = {}
        self.data_bytes: Dict[int, int] = {}  # address -> byte (data/rodata)
        self.equates: Dict[str, int] = {}

    # -- symbols ----------------------------------------------------------

    @property
    def entry(self) -> int:
        return self.symbols[self.entry_symbol]

    def addr_of(self, label: str) -> int:
        if label in self.symbols:
            return self.symbols[label]
        if label in self.equates:
            return self.equates[label]
        raise KeyError(f"undefined symbol: {label}")

    def label_at(self, address: int) -> Optional[str]:
        for name, addr in self.symbols.items():
            if addr == address:
                return name
        return None

    def resolve(self, name: str) -> int:
        """Resolver callback for instruction encoding."""
        return self.addr_of(name)

    # -- geometry -----------------------------------------------------------

    def section_of(self, address: int) -> Optional[str]:
        for name, (base, end) in self.section_ranges.items():
            if base <= address < end:
                return name
        return None

    def section_size(self, name: str) -> int:
        if name not in self.section_ranges:
            return 0
        base, end = self.section_ranges[name]
        return end - base

    def code_size(self) -> int:
        """Total bytes of executable code (text + mtbar)."""
        return self.section_size(TEXT) + self.section_size(MTBAR)

    # -- bytes ----------------------------------------------------------------

    def code_bytes(self) -> bytes:
        """Deterministic byte image of all executable sections, in address
        order — the input to the CFA engine's ``H_MEM`` measurement."""
        chunks = []
        for addr in sorted(self.instr_at):
            chunks.append(struct.pack("<I", addr))
            chunks.append(encode_instr(self.instr_at[addr], self.resolve))
        return b"".join(chunks)

    def rodata_word(self, address: int) -> int:
        """Read a little-endian word from the linked data image."""
        value = 0
        for i in range(4):
            value |= self.data_bytes.get(address + i, 0) << (8 * i)
        return value

    # -- display ------------------------------------------------------------

    def disassemble(self, section: Optional[str] = None) -> str:
        lines = []
        for item in self.items:
            if section is not None and item.section != section:
                continue
            for label in item.labels:
                lines.append(f"{label}:")
            payload = item.payload
            if isinstance(payload, Instr):
                lines.append(f"  {item.address:#010x}  {payload}")
            elif isinstance(payload, DataWord):
                lines.append(f"  {item.address:#010x}  .word {payload.value}")
            elif isinstance(payload, DataBytes):
                lines.append(f"  {item.address:#010x}  .byte x{len(payload.data)}")
            else:
                lines.append(f"  {item.address:#010x}  .space {payload.length}")
        return "\n".join(lines)
