"""Operand object model used by the assembler, rewriter, and CPU."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.registers import reg_name


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    num: int

    def __str__(self) -> str:
        return reg_name(self.num)


@dataclass(frozen=True)
class Imm:
    """An immediate operand (always written ``#value``)."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Label:
    """A symbolic reference, resolved through the program symbol table."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base, #offset]`` or ``[base, index, lsl #shift]``."""

    base: Reg
    offset: int = 0
    index: Optional[Reg] = None
    shift: int = 0

    def __str__(self) -> str:
        if self.index is not None:
            if self.shift:
                return f"[{self.base}, {self.index}, lsl #{self.shift}]"
            return f"[{self.base}, {self.index}]"
        if self.offset:
            return f"[{self.base}, #{self.offset}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class RegList:
    """A register list for PUSH/POP, kept in ascending order."""

    regs: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "regs", tuple(sorted(set(self.regs))))

    def __contains__(self, num: int) -> bool:
        return num in self.regs

    def __len__(self) -> int:
        return len(self.regs)

    def __iter__(self):
        return iter(self.regs)

    def without(self, num: int) -> "RegList":
        """A copy of this list with ``num`` removed."""
        return RegList(tuple(r for r in self.regs if r != num))

    def __str__(self) -> str:
        return "{" + ", ".join(reg_name(r) for r in self.regs) + "}"


Operand = object  # union of Reg | Imm | Label | Mem | RegList
