"""Pure 32-bit ALU arithmetic with ARM flag semantics."""

from __future__ import annotations

from typing import Tuple

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def u32(value: int) -> int:
    """Truncate to an unsigned 32-bit value."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    value &= MASK32
    return value - 0x100000000 if value & SIGN_BIT else value


def add_with_flags(a: int, b: int, carry_in: int = 0) -> Tuple[int, bool, bool, bool, bool]:
    """ARM ``ADDS``: return ``(result, n, z, c, v)``.

    Subtraction is expressed as ``add_with_flags(a, ~b, 1)`` following the
    architecture's AddWithCarry definition.
    """
    a &= MASK32
    b &= MASK32
    unsigned = a + b + carry_in
    result = unsigned & MASK32
    signed = s32(a) + s32(b) + carry_in
    n = bool(result & SIGN_BIT)
    z = result == 0
    c = unsigned > MASK32
    v = signed != s32(result)
    return result, n, z, c, v


def sub_with_flags(a: int, b: int) -> Tuple[int, bool, bool, bool, bool]:
    """ARM ``SUBS``/``CMP``: carry means *no borrow*."""
    return add_with_flags(a, (~b) & MASK32, 1)


def logical_flags(result: int, carry: bool) -> Tuple[int, bool, bool, bool]:
    """Flags for logical/shift results: ``(result, n, z, c)`` (V unaffected)."""
    result &= MASK32
    return result, bool(result & SIGN_BIT), result == 0, carry


def lsl(value: int, amount: int, carry_in: bool) -> Tuple[int, bool]:
    """Logical shift left; returns ``(result, carry_out)``."""
    value &= MASK32
    if amount == 0:
        return value, carry_in
    if amount > 32:
        return 0, False
    carry = bool((value >> (32 - amount)) & 1) if amount <= 32 else False
    return u32(value << amount), carry


def lsr(value: int, amount: int, carry_in: bool) -> Tuple[int, bool]:
    """Logical shift right; returns ``(result, carry_out)``."""
    value &= MASK32
    if amount == 0:
        return value, carry_in
    if amount > 32:
        return 0, False
    carry = bool((value >> (amount - 1)) & 1)
    return value >> amount, carry


def asr(value: int, amount: int, carry_in: bool) -> Tuple[int, bool]:
    """Arithmetic shift right; returns ``(result, carry_out)``."""
    value &= MASK32
    if amount == 0:
        return value, carry_in
    if amount >= 32:
        amount = 32
    signed = s32(value)
    carry = bool((signed >> (amount - 1)) & 1)
    return u32(signed >> amount), carry


def ror(value: int, amount: int, carry_in: bool) -> Tuple[int, bool]:
    """Rotate right; returns ``(result, carry_out)``."""
    value &= MASK32
    if amount == 0:
        return value, carry_in
    amount %= 32
    if amount == 0:
        return value, bool(value & SIGN_BIT)
    result = u32((value >> amount) | (value << (32 - amount)))
    return result, bool(result & SIGN_BIT)


def udiv(a: int, b: int) -> int:
    """Unsigned division; divide-by-zero yields 0 (ARM semantics)."""
    a &= MASK32
    b &= MASK32
    return 0 if b == 0 else a // b


def sdiv(a: int, b: int) -> int:
    """Signed division truncating toward zero; divide-by-zero yields 0."""
    sa, sb = s32(a), s32(b)
    if sb == 0:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return u32(quotient)
