"""ARM condition codes and their evaluation against the APSR flags."""

from __future__ import annotations

from repro.isa.registers import Flags

#: Canonical condition-code suffixes (aliases normalised by the parser).
CONDITIONS = (
    "eq",
    "ne",
    "cs",
    "cc",
    "mi",
    "pl",
    "vs",
    "vc",
    "hi",
    "ls",
    "ge",
    "lt",
    "gt",
    "le",
)

ALIASES = {"hs": "cs", "lo": "cc"}

_INVERSE = {
    "eq": "ne",
    "ne": "eq",
    "cs": "cc",
    "cc": "cs",
    "mi": "pl",
    "pl": "mi",
    "vs": "vc",
    "vc": "vs",
    "hi": "ls",
    "ls": "hi",
    "ge": "lt",
    "lt": "ge",
    "gt": "le",
    "le": "gt",
}


def normalise_cond(cond: str) -> str:
    """Normalise a condition suffix, mapping aliases (hs/lo) to canon."""
    low = cond.lower()
    low = ALIASES.get(low, low)
    if low not in CONDITIONS:
        raise ValueError(f"unknown condition code: {cond!r}")
    return low


def invert_cond(cond: str) -> str:
    """Return the logically inverse condition code."""
    return _INVERSE[normalise_cond(cond)]


def cond_passed(cond: str, flags: Flags) -> bool:
    """Evaluate a condition code against the current flags."""
    n, z, c, v = flags.n, flags.z, flags.c, flags.v
    cond = normalise_cond(cond)
    if cond == "eq":
        return z
    if cond == "ne":
        return not z
    if cond == "cs":
        return c
    if cond == "cc":
        return not c
    if cond == "mi":
        return n
    if cond == "pl":
        return not n
    if cond == "vs":
        return v
    if cond == "vc":
        return not v
    if cond == "hi":
        return c and not z
    if cond == "ls":
        return (not c) or z
    if cond == "ge":
        return n == v
    if cond == "lt":
        return n != v
    if cond == "gt":
        return (not z) and (n == v)
    if cond == "le":
        return z or (n != v)
    raise AssertionError(cond)
