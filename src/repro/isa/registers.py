"""Register file naming and the APSR flag set."""

from __future__ import annotations

from dataclasses import dataclass

REG_COUNT = 16
SP = 13
LR = 14
PC = 15

_ALIASES = {"sp": SP, "lr": LR, "pc": PC, "fp": 11, "ip": 12}


def parse_reg(name: str) -> int:
    """Parse a register name (``r0``..``r15``, ``sp``, ``lr``, ``pc``).

    Only canonical spellings count: ``r00``, ``r 5``, or ``r+5`` are
    identifiers (labels), not registers — so everything the instruction
    printer emits parses back to the same operand it printed.
    """
    low = name.strip().lower()
    if low in _ALIASES:
        return _ALIASES[low]
    if low.startswith("r"):
        digits = low[1:]
        if (digits.isascii() and digits.isdigit()
                and (len(digits) == 1 or digits[0] != "0")):
            num = int(digits)
            if 0 <= num < REG_COUNT:
                return num
    raise ValueError(f"not a register: {name!r}")


def reg_name(num: int) -> str:
    """Canonical name for a register index."""
    if num == SP:
        return "sp"
    if num == LR:
        return "lr"
    if num == PC:
        return "pc"
    if 0 <= num < REG_COUNT:
        return f"r{num}"
    raise ValueError(f"not a register index: {num}")


@dataclass
class Flags:
    """The N/Z/C/V condition flags of the APSR."""

    n: bool = False
    z: bool = False
    c: bool = False
    v: bool = False

    def copy(self) -> "Flags":
        return Flags(self.n, self.z, self.c, self.v)

    def as_tuple(self) -> tuple:
        return (self.n, self.z, self.c, self.v)

    def __str__(self) -> str:
        bits = [
            "N" if self.n else "n",
            "Z" if self.z else "z",
            "C" if self.c else "c",
            "V" if self.v else "v",
        ]
        return "".join(bits)
