"""Instruction-set architecture model.

A Thumb-2-like subset of ARMv8-M sufficient to express the workloads the
RAP-Track paper evaluates: ALU operations, loads/stores, stack push/pop,
direct and conditional branches, direct and indirect calls, returns via
``BX LR`` / ``POP {..,PC}``, and indirect jumps via ``LDR PC, [..]``.

The ISA is *synthetic but proportioned*: instruction byte sizes and cycle
counts track Cortex-M33 orders of magnitude so that code-size and runtime
comparisons reproduce the paper's shapes (see DESIGN.md section 5).
"""

from repro.isa.registers import (
    LR,
    PC,
    REG_COUNT,
    SP,
    Flags,
    parse_reg,
    reg_name,
)
from repro.isa.operands import Imm, Label, Mem, Reg, RegList
from repro.isa.conditions import CONDITIONS, cond_passed, invert_cond
from repro.isa.instructions import (
    BRANCH_MNEMONICS,
    MNEMONICS,
    Instr,
    InstrKind,
    InstrSpec,
)
from repro.isa.encoding import encode_instr, encode_program_bytes

__all__ = [
    "LR",
    "PC",
    "SP",
    "REG_COUNT",
    "Flags",
    "parse_reg",
    "reg_name",
    "Reg",
    "Imm",
    "Label",
    "Mem",
    "RegList",
    "CONDITIONS",
    "cond_passed",
    "invert_cond",
    "Instr",
    "InstrKind",
    "InstrSpec",
    "MNEMONICS",
    "BRANCH_MNEMONICS",
    "encode_instr",
    "encode_program_bytes",
]
