"""Instruction objects and per-mnemonic static metadata.

Sizes are synthetic but proportioned to Thumb-2 (2-byte narrow, 4-byte
wide encodings); cycle counts follow Cortex-M33 orders of magnitude.
Both only need to be *relatively* faithful: the paper's evaluation
compares methods against each other on the same ISA.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.isa.operands import Label, Reg
from repro.isa.registers import PC


class InstrKind(Enum):
    """Coarse instruction classes used by the CPU and the static analyser."""

    ALU = "alu"
    MOVE = "move"
    COMPARE = "compare"
    LOAD = "load"
    STORE = "store"
    PUSH = "push"
    POP = "pop"
    BRANCH = "branch"  # direct b / b<cond>
    CALL = "call"  # bl (direct)
    INDIRECT_CALL = "indirect_call"  # blx rs
    INDIRECT_BRANCH = "indirect_branch"  # bx rs
    COMPARE_BRANCH = "compare_branch"  # cbz / cbnz
    SYSTEM = "system"  # nop, svc, bkpt


@dataclass(frozen=True)
class InstrSpec:
    """Static metadata for one mnemonic."""

    mnemonic: str
    kind: InstrKind
    size: int  # bytes
    cycles: int  # base cycle cost (branch-taken extras added by CPU)
    operand_count: Tuple[int, ...] = ()  # accepted operand arities


def _spec(mnemonic, kind, size, cycles, arities):
    return InstrSpec(mnemonic, kind, size, cycles, tuple(arities))


#: All mnemonics understood by the assembler and CPU.
MNEMONICS: Dict[str, InstrSpec] = {
    spec.mnemonic: spec
    for spec in [
        # data processing (narrow, 1 cycle)
        _spec("mov", InstrKind.MOVE, 2, 1, (2,)),
        _spec("mvn", InstrKind.MOVE, 2, 1, (2,)),
        _spec("adr", InstrKind.MOVE, 4, 2, (2,)),  # load label address
        _spec("mov32", InstrKind.MOVE, 4, 2, (2,)),  # 32-bit immediate
        _spec("add", InstrKind.ALU, 2, 1, (3,)),
        _spec("sub", InstrKind.ALU, 2, 1, (3,)),
        _spec("rsb", InstrKind.ALU, 2, 1, (3,)),
        _spec("adc", InstrKind.ALU, 2, 1, (3,)),
        _spec("sbc", InstrKind.ALU, 2, 1, (3,)),
        _spec("and", InstrKind.ALU, 2, 1, (3,)),
        _spec("orr", InstrKind.ALU, 2, 1, (3,)),
        _spec("eor", InstrKind.ALU, 2, 1, (3,)),
        _spec("bic", InstrKind.ALU, 2, 1, (3,)),
        _spec("lsl", InstrKind.ALU, 2, 1, (3,)),
        _spec("lsr", InstrKind.ALU, 2, 1, (3,)),
        _spec("asr", InstrKind.ALU, 2, 1, (3,)),
        _spec("ror", InstrKind.ALU, 2, 1, (3,)),
        _spec("mul", InstrKind.ALU, 4, 1, (3,)),
        _spec("udiv", InstrKind.ALU, 4, 3, (3,)),
        _spec("sdiv", InstrKind.ALU, 4, 3, (3,)),
        _spec("cmp", InstrKind.COMPARE, 2, 1, (2,)),
        _spec("cmn", InstrKind.COMPARE, 2, 1, (2,)),
        _spec("tst", InstrKind.COMPARE, 2, 1, (2,)),
        # memory
        _spec("ldr", InstrKind.LOAD, 2, 2, (2,)),
        _spec("ldrb", InstrKind.LOAD, 2, 2, (2,)),
        _spec("ldrh", InstrKind.LOAD, 2, 2, (2,)),
        _spec("str", InstrKind.STORE, 2, 2, (2,)),
        _spec("strb", InstrKind.STORE, 2, 2, (2,)),
        _spec("strh", InstrKind.STORE, 2, 2, (2,)),
        _spec("push", InstrKind.PUSH, 2, 1, (1,)),
        _spec("pop", InstrKind.POP, 2, 1, (1,)),
        # control flow
        _spec("b", InstrKind.BRANCH, 2, 1, (1,)),
        _spec("bl", InstrKind.CALL, 4, 2, (1,)),
        _spec("blx", InstrKind.INDIRECT_CALL, 2, 2, (1,)),
        _spec("bx", InstrKind.INDIRECT_BRANCH, 2, 2, (1,)),
        _spec("cbz", InstrKind.COMPARE_BRANCH, 2, 1, (2,)),
        _spec("cbnz", InstrKind.COMPARE_BRANCH, 2, 1, (2,)),
        # system
        _spec("nop", InstrKind.SYSTEM, 2, 1, (0,)),
        _spec("svc", InstrKind.SYSTEM, 2, 1, (1,)),
        _spec("bkpt", InstrKind.SYSTEM, 2, 1, (0, 1)),
    ]
}

#: Mnemonics whose execution can change the PC non-sequentially.
BRANCH_MNEMONICS = frozenset(
    {"b", "bl", "blx", "bx", "cbz", "cbnz", "pop", "ldr"}
)

#: Extra cycles when a branch is actually taken (pipeline refill).
TAKEN_BRANCH_PENALTY = 1


@dataclass(frozen=True)
class Instr:
    """One assembled instruction.

    ``meta`` carries provenance annotations (e.g. trampoline-site ids set
    by the rewriter, loop-instrumentation markers) that never affect
    execution semantics or encoding.
    """

    mnemonic: str
    operands: Tuple = ()
    cond: Optional[str] = None
    meta: Tuple[Tuple[str, object], ...] = field(default=(), compare=False)

    @property
    def spec(self) -> InstrSpec:
        return MNEMONICS[self.mnemonic]

    @property
    def kind(self) -> InstrKind:
        return self.spec.kind

    @property
    def size(self) -> int:
        return self.spec.size

    def get_meta(self, key: str, default=None):
        for k, v in self.meta:
            if k == key:
                return v
        return default

    def with_meta(self, **kv) -> "Instr":
        merged = dict(self.meta)
        merged.update(kv)
        return replace(self, meta=tuple(sorted(merged.items())))

    # -- structural predicates used by the static analyser ---------------

    def writes_pc(self) -> bool:
        """True if this instruction may redirect control flow."""
        kind = self.kind
        if kind in (
            InstrKind.BRANCH,
            InstrKind.CALL,
            InstrKind.INDIRECT_CALL,
            InstrKind.INDIRECT_BRANCH,
            InstrKind.COMPARE_BRANCH,
        ):
            return True
        if kind is InstrKind.POP:
            (reglist,) = self.operands
            return PC in reglist
        if kind is InstrKind.LOAD and self.operands:
            dest = self.operands[0]
            return isinstance(dest, Reg) and dest.num == PC
        return False

    def is_conditional(self) -> bool:
        return self.cond is not None or self.kind is InstrKind.COMPARE_BRANCH

    def direct_target(self) -> Optional[Label]:
        """The label a direct branch/call targets, if any."""
        if self.kind in (InstrKind.BRANCH, InstrKind.CALL):
            (target,) = self.operands
            if isinstance(target, Label):
                return target
        if self.kind is InstrKind.COMPARE_BRANCH:
            target = self.operands[1]
            if isinstance(target, Label):
                return target
        return None

    # -- textual form -----------------------------------------------------

    def __str__(self) -> str:
        name = self.mnemonic + (self.cond or "")
        if not self.operands:
            return name
        return f"{name} " + ", ".join(str(op) for op in self.operands)


def make_instr(mnemonic: str, *operands, cond: Optional[str] = None, **meta) -> Instr:
    """Convenience constructor validating mnemonic and arity."""
    spec = MNEMONICS.get(mnemonic)
    if spec is None:
        raise ValueError(f"unknown mnemonic: {mnemonic!r}")
    if spec.operand_count and len(operands) not in spec.operand_count:
        raise ValueError(
            f"{mnemonic} expects {spec.operand_count} operands, got {len(operands)}"
        )
    meta_items = tuple(sorted(meta.items())) if meta else ()
    return Instr(mnemonic, tuple(operands), cond, meta_items)


__all__ = [
    "Instr",
    "InstrKind",
    "InstrSpec",
    "MNEMONICS",
    "BRANCH_MNEMONICS",
    "TAKEN_BRANCH_PENALTY",
    "make_instr",
]
