"""Deterministic synthetic machine encoding.

Real Thumb-2 encodings are not reproduced; instead each instruction is
encoded as the first ``size`` bytes of a keyed BLAKE2b digest over its
canonical resolved text. This gives the two properties the CFA pipeline
needs from machine code:

* any semantic change to an instruction changes its bytes (so ``H_MEM``
  detects modification), and
* the byte length per instruction matches the synthetic size model used
  for code-size accounting.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable, Optional

from repro.isa.instructions import Instr
from repro.isa.operands import Label

_PERSON = b"repro-isa"


def _canonical_text(instr: Instr, resolve: Optional[Callable[[str], int]]) -> str:
    """Canonical text with label operands resolved to absolute addresses."""
    parts = [instr.mnemonic, instr.cond or ""]
    for op in instr.operands:
        if isinstance(op, Label) and resolve is not None:
            parts.append(f"@{resolve(op.name):#x}")
        else:
            parts.append(str(op))
    return "|".join(parts)


def encode_instr(instr: Instr, resolve: Optional[Callable[[str], int]] = None) -> bytes:
    """Encode one instruction into ``instr.size`` deterministic bytes."""
    text = _canonical_text(instr, resolve).encode()
    digest = hashlib.blake2b(text, digest_size=8, person=_PERSON).digest()
    return digest[: instr.size]


def encode_program_bytes(
    instrs: Iterable[Instr], resolve: Optional[Callable[[str], int]] = None
) -> bytes:
    """Concatenated encoding of an instruction sequence."""
    return b"".join(encode_instr(i, resolve) for i in instrs)
