"""Figure 1 reproduction: the paper's motivation.

(a) naive MTB-based logging yields CFLogs 1.9-217x larger than
    instrumentation-based CFA (paper range); and
(b) instrumentation-based CFA costs 1.1-14.1x baseline runtime.

Shape targets: the ratio spread must span roughly two orders of
magnitude across workloads, and the runtime factors must reach well
past 10x on branch-dense applications while staying near 1x on
compute-dense ones.
"""

from repro.eval.figures import fig1_motivation, format_table
from repro.eval.runner import run_method
from conftest import save_table


def test_fig1a_cflog_blowup_band(all_runs, results_dir):
    rows = fig1_motivation(all_runs)
    save_table(results_dir, "fig1_motivation",
               format_table(rows, "Figure 1: naive-MTB vs instrumentation"))
    finite = [r["cflog_ratio"] for r in rows
              if r["cflog_ratio"] != float("inf")]
    assert min(finite) >= 1.0  # naive is never smaller
    assert max(finite) > 50  # the 217x end (geiger-style)
    assert min(finite) < 5  # the 1.9x end (branch-dense apps)


def test_fig1b_instrumentation_runtime_band(all_runs):
    rows = fig1_motivation(all_runs)
    factors = [r["runtime_factor"] for r in rows]
    assert max(factors) > 5  # the 14.1x end
    assert min(factors) < 1.5  # the 1.1x end


def test_bench_naive_mtb_attestation(benchmark, artifact_cache):
    """Time one naive-MTB attested execution (temperature)."""
    result = benchmark.pedantic(
        lambda: run_method("temperature", "naive-mtb", cache=artifact_cache),
        rounds=3, iterations=1)
    assert result.verified
