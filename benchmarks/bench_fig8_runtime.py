"""Figure 8 reproduction: CPU cycles per method.

Paper bands: RAP-Track adds 2-62% over the naive MTB (== baseline)
runtime; TRACES adds 7-1309% over baseline. Who-wins must hold on
every workload: baseline == naive <= rap-track <= traces.
"""

import pytest

from repro.eval.figures import EVAL_WORKLOADS, fig8_runtime, format_table
from repro.eval.runner import run_method
from conftest import save_table


def test_fig8_table_and_bands(all_runs, results_dir):
    rows = fig8_runtime(all_runs)
    save_table(results_dir, "fig8_runtime",
               format_table(rows, "Figure 8: runtime (CPU cycles)"))
    rap = [r["rap_over_naive_pct"] for r in rows]
    traces = [r["traces_over_base_pct"] for r in rows]
    assert max(rap) <= 70  # paper: up to 62%
    assert min(rap) >= 0
    assert max(traces) > 700  # paper: up to 1309%
    assert min(traces) >= 0  # paper: down to 7%


def test_fig8_ordering_every_workload(all_runs):
    for name, methods in all_runs.items():
        base = methods["baseline"].cycles
        assert methods["naive-mtb"].cycles == base, name
        assert methods["rap-track"].cycles >= base, name
        assert methods["traces"].cycles >= methods["rap-track"].cycles, name


@pytest.mark.parametrize("method", ["baseline", "naive-mtb",
                                    "rap-track", "traces"])
def test_bench_gps_per_method(benchmark, method, artifact_cache):
    """Time the branch-dense GPS workload under each method (offline
    phase cached, so the timing isolates the execution phase)."""
    result = benchmark.pedantic(
        lambda: run_method("gps", method, cache=artifact_cache),
        rounds=3, iterations=1)
    assert result.verified


@pytest.mark.parametrize("method", ["rap-track", "traces"])
def test_bench_prime_per_method(benchmark, method, artifact_cache):
    result = benchmark.pedantic(
        lambda: run_method("prime", method, cache=artifact_cache),
        rounds=3, iterations=1)
    assert result.verified
