"""Fleet-learned speculation: adaptive dictionaries vs the static miner.

ROADMAP item 3: the static tandem miner (``mine_subpaths``) recovers
10.1x on bubblesort but a flat 1.0x on insertsort — its dictionary
only catches back-to-back repeats. The fleet tier's adaptive loop
(sample live traffic -> mine n-grams by measured profit -> version the
dictionary -> push/ACK the epoch) must beat that baseline on CFLog
bytes/session for at least 3 of the 15 workloads *including*
insertsort, while verdicts stay byte-identical: compression is only
allowed to move bytes, never the verdict.

Two tables go to ``benchmarks/results/speccfa_fleet.txt``:

* per-workload wire bytes under no / static / adaptive dictionaries
  (mined from the same sampled traffic);
* a heterogeneous fleet driven through the full protocol — epoch-0
  round, one learning round (mine + push + ACK), epoch-1 round — with
  bytes/session and verifier reports/sec before and after learning.

``SPECCFA_FLEET_DEVICES`` scales the fleet half (default 300 keeps the
suite quick; the committed table was produced with 10000).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cfa.fleet import (
    DeviceProfile,
    DeviceSpec,
    FleetService,
    FleetSimulator,
    learn_dictionaries,
    mine_fleet_dictionary,
)
from repro.cfa.speccfa import compress, expand, mine_subpaths
from repro.eval.figures import EVAL_WORKLOADS, format_table
from conftest import save_table

FLEET_DEVICES = int(os.environ.get("SPECCFA_FLEET_DEVICES", "300"))
SEED = 11


def _bytes(records) -> int:
    return sum(r.size_bytes for r in records)


@pytest.fixture(scope="module")
def sampled_streams(artifact_cache):
    """Expanded traffic samples for every workload, tapped from a probe
    fleet that ran the real wire protocol (one honest device each)."""
    specs = [DeviceSpec(f"probe-{name}", DeviceProfile(name))
             for name in EVAL_WORKLOADS]
    with FleetService(sampler=True) as service:
        report = FleetSimulator(
            specs, seed=SEED,
            cache=artifact_cache).run(service)
        assert report.ok, report.mismatches
        return service.traffic_samples()


def test_adaptive_vs_static_table(sampled_streams, results_dir):
    rows = []
    adaptive_wins = []
    for name in EVAL_WORKLOADS:
        streams = sampled_streams.get(DeviceProfile(name), [])
        records = list(streams[0][0]) if streams else []
        plain = _bytes(records)
        static_dict = mine_subpaths(records)
        adaptive_dict = mine_fleet_dictionary(streams)
        static_b = _bytes(compress(records, static_dict))
        adaptive_b = _bytes(compress(list(records), adaptive_dict))
        # compression must stay lossless before it counts for anything
        assert expand(compress(list(records), adaptive_dict),
                      adaptive_dict) == records
        rows.append({
            "workload": name,
            "plain_B": plain,
            "static_B": static_b,
            "adaptive_B": adaptive_b,
            "static_x": plain / static_b if static_b else 1.0,
            "adaptive_x": plain / adaptive_b if adaptive_b else 1.0,
            "subpaths": len(adaptive_dict),
        })
        assert adaptive_b <= plain, name  # never expands
        if adaptive_b < static_b:
            adaptive_wins.append(name)
    table = format_table(
        rows, "Fleet-learned speculation: wire bytes per dictionary")
    # the static miner's flat spot is the one the adaptive loop must fix
    insertsort = next(r for r in rows if r["workload"] == "insertsort")
    assert insertsort["adaptive_x"] > 1.0
    assert len(adaptive_wins) >= 3, adaptive_wins
    test_adaptive_vs_static_table.table = table


def test_fleet_learning_round_trip(artifact_cache, results_dir):
    """Epoch-0 round -> learn -> epoch-1 round on one mixed fleet."""
    specs = [DeviceSpec(f"prv-{i:05d}",
                        DeviceProfile(EVAL_WORKLOADS[i % len(EVAL_WORKLOADS)]))
             for i in range(FLEET_DEVICES)]
    rows = []
    with FleetService(sampler=True) as service:
        simulator = FleetSimulator(specs, seed=SEED, cache=artifact_cache)
        for spec in specs:  # attest templates outside the timed rounds
            simulator.factory.chain(spec, b"\x00" * 16)

        def run_round(label):
            m = service.metrics
            bytes0, reports0 = m.bytes_ingested, m.reports_ingested
            sessions0 = m.sessions_settled
            t0 = time.perf_counter()
            report = simulator.run(service)
            wall = time.perf_counter() - t0
            assert report.ok, report.mismatches[:3]
            m = service.metrics
            sessions = m.sessions_settled - sessions0
            rows.append({
                "round": label,
                "sessions": sessions,
                "bytes_per_session":
                    (m.bytes_ingested - bytes0) / max(1, sessions),
                "reports_per_s":
                    (m.reports_ingested - reports0) / wall,
            })
            return {d: v for d, v in service.verdicts.items()}

        before = run_round("epoch 0 (plain)")
        published = learn_dictionaries(service)
        assert published, "mining found nothing to publish"
        acked = simulator.handshake(service)
        # every device whose profile earned a dictionary ACKs; profiles
        # whose logs are empty (crc32, matmult) mine nothing and their
        # devices rightly stay on epoch 0
        assert acked == sum(1 for s in specs if s.profile in published)
        after = run_round("epoch 1 (learned)")
        # compression moved bytes, never the verdict: same devices,
        # same executions -> same expanded-stream digests and verdicts
        for device_id, verdict in after.items():
            assert verdict.accepted
            assert (verdict.records_digest
                    == before[device_id].records_digest), device_id
        assert (rows[1]["bytes_per_session"]
                < rows[0]["bytes_per_session"])
    fleet_table = format_table(
        rows, f"Heterogeneous {FLEET_DEVICES}-device fleet: "
              f"before/after one learning round")
    table = getattr(test_adaptive_vs_static_table, "table", "")
    save_table(results_dir, "speccfa_fleet",
               (table + "\n\n" + fleet_table) if table else fleet_table)
