"""Cycle-model sensitivity: the reproduction's shape must not hinge on
the calibration constants (DESIGN.md section 5).

Sweeps the TrustZone world-switch cost over an order of magnitude and
checks the who-wins ordering (baseline == naive <= rap-track <= traces)
and RAP-Track's modest-overhead band survive at every point.
"""

from repro.cfa.engine import EngineConfig
from repro.eval.figures import format_table
from repro.eval.runner import run_method
from repro.tz.gateway import GatewayCosts
from conftest import save_table

WORKLOADS = ("gps", "prime", "temperature")
SWEEP = (15, 75, 300)  # cheap, calibrated, expensive world switches


def test_gateway_cost_sweep(results_dir, artifact_cache):
    # the EngineConfig sweep reuses one offline artifact per
    # (workload, method): only the execution phase varies
    rows = []
    for cost in SWEEP:
        config = EngineConfig(gateway=GatewayCosts(entry=cost * 3 // 5,
                                                   exit=cost * 2 // 5))
        for name in WORKLOADS:
            base = run_method(name, "baseline", config,
                              cache=artifact_cache)
            rap = run_method(name, "rap-track", config,
                             cache=artifact_cache)
            traces = run_method(name, "traces", config,
                                cache=artifact_cache)
            rows.append({
                "switch_cycles": cost,
                "workload": name,
                "rap_pct": 100.0 * rap.overhead_vs(base),
                "traces_pct": 100.0 * traces.overhead_vs(base),
            })
            # shape invariants at every calibration point
            assert base.cycles <= rap.cycles <= traces.cycles
            assert rap.overhead_vs(base) < 1.0  # never doubles runtime
    save_table(results_dir, "sensitivity_gateway",
               format_table(rows, "Sensitivity: world-switch cost sweep"))
    # TRACES' penalty scales with the switch cost; RAP-Track's does not
    gps = [r for r in rows if r["workload"] == "gps"]
    assert gps[-1]["traces_pct"] > 2 * gps[0]["traces_pct"]
    assert abs(gps[-1]["rap_pct"] - gps[0]["rap_pct"]) < 25


def test_activation_latency_sweep(results_dir, artifact_cache):
    """Longer MTB activation windows need more stub padding; the stock
    single-NOP padding covers latency <= 1 (and the model lets users
    explore beyond)."""
    rows = []
    for latency in (0, 1):
        run = run_method("temperature", "rap-track",
                         config=EngineConfig(activation_latency=latency),
                         cache=artifact_cache)
        rows.append({"activation_latency": latency,
                     "verified": run.verified,
                     "cflog_B": run.cflog_bytes})
    save_table(results_dir, "sensitivity_latency",
               format_table(rows, "Sensitivity: MTB activation latency"))
    assert all(r["verified"] for r in rows)
    assert len({r["cflog_B"] for r in rows}) == 1
