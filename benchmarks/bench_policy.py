"""Policy control plane at fleet scale: SLA metrics + fold overhead.

Two axes. **SLA**: a compromise-then-heal campaign (5% of the fleet
running genuine attacks, equivocating, or persistently tampered) over
a sharded durable store must quarantine every compromised device,
heal-and-rejoin all of them, and never touch an honest device — while
the table records mean time-to-quarantine, healing success, decision
volume, and how fast a killed coordinator rebuilds the whole control
plane from the evidence store. **Overhead**: the quarantine engine is
a pure fold over verdicts the service already produced, so an honest
fleet with the policy engine on must not measurably lose throughput
against the same fleet with it off — the fold is allowed to move the
clock by noise, never by a tier.

Chain generation (the Prv side) happens before the timed windows; the
measurements are ingest + verification (+ fold) only.
"""

from __future__ import annotations

import os
import time

from repro.cfa.fleet import (
    CampaignSimulator,
    ChainFactory,
    FleetService,
    ShardedFleetService,
    build_campaign_specs,
    build_fleet_specs,
    device_key,
)
from repro.cfa.policy import PolicyEngine, PolicyRegistry, policy_key
from conftest import save_table

#: campaign size — default keeps the suite quick; the committed
#: benchmarks/results table was produced with POLICY_SCALE_DEVICES=2000
SCALE = int(os.environ.get("POLICY_SCALE_DEVICES", "400"))
ROUNDS = 3
SEED = 7
SHARDS = 2


def test_policy_campaign_sla(artifact_cache, results_dir, tmp_path):
    factory = ChainFactory(watermark=1024, cache=artifact_cache)
    specs = build_campaign_specs(SCALE, compromised_fraction=0.05,
                                 seed=SEED)
    simulator = CampaignSimulator(specs, seed=SEED, factory=factory)
    store = tmp_path / "policy-evidence"
    service = ShardedFleetService(
        shards=SHARDS, store_dir=store, fsync=False,
        policy=True, key_lookup=device_key)
    simulator.pin_profiles(service)
    t0 = time.perf_counter()
    report = simulator.run(service, rounds=ROUNDS)
    wall = time.perf_counter() - t0
    decisions = service.policy.decisions_made
    metrics = service.close()
    assert report.ok, report.summary()
    assert report.rejoined == report.compromised
    assert report.wrongful_quarantines == []

    # a killed coordinator rebuilds states + heal orders from evidence
    t0 = time.perf_counter()
    resumed = ShardedFleetService(
        shards=SHARDS, store_dir=store, fsync=False, resume=True,
        policy=True, key_lookup=device_key)
    rebuild_s = time.perf_counter() - t0
    assert resumed.policy.state_names() == report.end_states
    resumed.close()

    lines = [f"Policy campaign SLA ({SCALE} devices, "
             f"{len(report.compromised)} compromised, {ROUNDS} rounds, "
             f"{SHARDS} shards, evidence on, fsync off)",
             f"{'metric':34s} {'value':>14s}"]
    for name, value in (
        ("campaign wall", f"{wall:.2f}s"),
        ("sustained", f"{metrics.reports_ingested / wall:.0f} rps"),
        ("quarantined / compromised",
         f"{len(report.quarantined_round)}/{len(report.compromised)}"),
        ("mean time to quarantine",
         f"{report.mean_time_to_quarantine:.2f} rounds"),
        ("healing success", f"{report.healing_success_rate:.0%}"),
        ("wrongful quarantines", f"{len(report.wrongful_quarantines)}"),
        ("notices MAC-verified", f"{report.notices_verified}"),
        ("policy decisions", f"{decisions}"),
        ("evidence records", f"{metrics.evidence_records}"),
        ("control-plane rebuild", f"{rebuild_s * 1e3:.1f} ms"),
    ):
        lines.append(f"{name:34s} {value:>14s}")
    save_table(results_dir, "policy_sla", "\n".join(lines))


def run_honest(specs, factory, policy):
    service = FleetService(idle_timeout=5.0, policy=policy,
                           key_lookup=device_key if policy else None)
    sessions = []
    for spec in specs:
        challenge = service.open_session(
            spec.device_id, spec.profile, device_key(spec.device_id))
        sessions.append((spec, factory.chain(spec, challenge.nonce)))
    reports = 0
    t0 = time.perf_counter()
    for spec, chunks in sessions:
        for chunk in chunks:
            service.submit(spec.device_id, chunk)
            reports += 1
    service.drain()
    wall = time.perf_counter() - t0
    verdicts = dict(service.verdicts)
    service.close()
    return verdicts, reports / wall


def test_policy_fold_overhead_is_noise(artifact_cache, results_dir):
    """Honest fleet, engine on vs off: identical verdicts, zero
    decisions, and throughput within noise (>= 0.8x)."""
    factory = ChainFactory(watermark=1024, cache=artifact_cache)
    specs = build_fleet_specs(SCALE, workloads=("fibcall", "prime"),
                              attack_fraction=0.0, seed=SEED)
    base_verdicts, base_rps = run_honest(specs, factory, policy=None)
    engine = PolicyEngine(registry=PolicyRegistry(
        policy_key(b"fleet-vrf")))
    verdicts, rps = run_honest(specs, factory, policy=engine)
    assert {d: v.accepted for d, v in verdicts.items()} \
        == {d: v.accepted for d, v in base_verdicts.items()}
    assert engine.decisions_made == 0  # honest fleet: silent engine
    lines = [f"Policy fold overhead ({SCALE} honest devices)",
             f"{'configuration':22s} {'rps':>8s}",
             f"{'policy off':22s} {base_rps:8.0f}",
             f"{'policy on':22s} {rps:8.0f}",
             f"{'ratio':22s} {rps / base_rps:7.2f}x"]
    save_table(results_dir, "policy_overhead", "\n".join(lines))
    assert rps >= 0.8 * base_rps
