"""Figure 10 reproduction: program memory overhead.

Paper shape: both methods grow the binary modestly; RAP-Track is
usually slightly larger than TRACES because of the loop trampolines
and the NOP activation padding in MTBAR stubs (section V-C).
"""

from repro.core.pipeline import transform
from repro.eval.figures import fig10_code_size, format_table
from repro.workloads import load_workload
from conftest import save_table


def test_fig10_table_and_shape(all_runs, results_dir):
    rows = fig10_code_size(all_runs)
    save_table(results_dir, "fig10_codesize",
               format_table(rows, "Figure 10: code size (bytes)"))
    for row in rows:
        assert row["rap_track_B"] >= row["baseline_B"], row["workload"]
        assert row["traces_B"] >= row["baseline_B"], row["workload"]
        # RAP-Track >= TRACES (the paper's 'slightly more overhead')
        assert row["rap_track_B"] >= row["traces_B"], row["workload"]


def test_fig10_overhead_is_moderate(all_runs):
    for row in fig10_code_size(all_runs):
        if row["baseline_B"]:
            assert row["rap_overhead_B"] / row["baseline_B"] < 1.0, (
                row["workload"])


def test_bench_offline_phase(benchmark):
    """Time RAP-Track's static analysis + rewriting (the offline phase)
    on the largest workload source."""
    module_source = load_workload("gps")

    def offline():
        return transform(module_source.module())

    result = benchmark.pedantic(offline, rounds=5, iterations=1)
    assert result.rmap.cond_sites or result.rmap.indirect_sites
