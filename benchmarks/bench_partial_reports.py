"""Section V-B reproduction: partial reports under the 4 KB MTB.

Paper claim: naive MTB logging forces frequent pauses for partial
report transmission, while RAP-Track fits most applications' whole
CFLog in a single report.
"""

from repro.eval.figures import format_table, partial_report_table
from repro.eval.runner import run_method
from conftest import save_table


def test_partial_report_table(all_runs, results_dir):
    rows = partial_report_table(all_runs)
    save_table(results_dir, "partial_reports",
               format_table(rows, "Partial reports at the 4 KB MTB limit"))
    # RAP-Track: single report on most workloads (the paper's claim)
    single = sum(1 for r in rows if r["rap_single_report"])
    assert single >= 2 * len(rows) // 3
    # ... and pauses far less often than the naive MTB overall
    naive_total = sum(r["naive_partials"] for r in rows)
    rap_total = sum(r["rap_partials"] for r in rows)
    assert naive_total > 3 * rap_total


def test_naive_never_fewer_partials(all_runs):
    for row in partial_report_table(all_runs):
        assert row["naive_partials"] >= row["rap_partials"], row["workload"]


def test_bench_attestation_with_partials(benchmark, artifact_cache):
    """Time a bubblesort attestation (log > 4 KB: forces partials)."""
    result = benchmark.pedantic(
        lambda: run_method("bubblesort", "rap-track", cache=artifact_cache),
        rounds=3, iterations=1)
    assert result.partial_reports >= 1
