"""Fleet verification throughput: serial Vrf vs the fleet service.

One 200-session honest fleet (fibcall/prime under RAP-Track) transmits
the same report stream to every configuration: the serial baseline
verifies one session at a time through ``verify_session_chain`` with
no sharing; the fleet service runs the identical stream inline with
the replay cache and through a 4-worker pool. The service must reach
at least 2x the baseline's reports/sec with 4 workers while producing
byte-identical per-session verdicts — concurrency and caching are only
allowed to move the clock, never the verdict.

Chain generation (the Prv side) happens before the timed window; the
measurement is ingest + verification only.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.cfa.fleet import (
    ChainFactory,
    FleetService,
    ShardedFleetService,
    build_fleet_specs,
    device_key,
    verify_session_chain,
)
from conftest import save_table

SESSIONS = 200
SEED = 7

#: sharded scale run size — default keeps the suite quick; the
#: benchmarks/results table was produced with FLEET_SCALE_DEVICES=100000
SCALE_DEVICES = int(os.environ.get("FLEET_SCALE_DEVICES", "2000"))


@pytest.fixture(scope="module")
def specs():
    return build_fleet_specs(SESSIONS, attack_fraction=0.0, seed=SEED)


@pytest.fixture(scope="module")
def factory(artifact_cache):
    return ChainFactory(watermark=1024, cache=artifact_cache)


@pytest.fixture(scope="module")
def baseline(specs, factory):
    """Serial verification: per-session, uncached, one at a time."""
    service = FleetService(workers=0, replay_cache=False)
    sessions = []
    for spec in specs:
        challenge = service.open_session(
            spec.device_id, spec.profile, device_key(spec.device_id))
        sessions.append((spec, challenge.nonce,
                         factory.chain(spec, challenge.nonce)))
    reports = sum(len(chunks) for _, _, chunks in sessions)
    t0 = time.perf_counter()
    verdicts = {
        spec.device_id: verify_session_chain(
            spec.device_id, spec.profile, device_key(spec.device_id),
            nonce, chunks)
        for spec, nonce, chunks in sessions
    }
    wall = time.perf_counter() - t0
    return verdicts, wall, reports


def run_fleet(specs, factory, **service_kwargs):
    """Drive the same interleaved stream through a fleet service."""
    service = FleetService(**service_kwargs)
    chains = {}
    order = []
    for spec in specs:
        challenge = service.open_session(
            spec.device_id, spec.profile, device_key(spec.device_id))
        chains[spec.device_id] = factory.chain(spec, challenge.nonce)
        order.extend((spec.device_id, i)
                     for i in range(len(chains[spec.device_id])))
    random.Random(SEED).shuffle(order)
    cursors = dict.fromkeys(chains, 0)
    t0 = time.perf_counter()
    for device_id, _ in order:  # per-device cursors keep in-session order
        index = cursors[device_id]
        cursors[device_id] += 1
        service.submit(device_id, chains[device_id][index])
    metrics = service.close()
    wall = time.perf_counter() - t0
    return dict(service.verdicts), wall, metrics


def test_fleet_throughput(specs, factory, baseline, results_dir):
    base_verdicts, base_wall, reports = baseline
    base_rps = reports / base_wall
    rows = [("serial baseline", base_wall, base_rps, 1.0, "-")]
    speedups = {}
    for label, kwargs in (
        ("fleet inline + cache", dict(workers=0)),
        ("fleet 4 workers + cache", dict(workers=4)),
        ("fleet 4 process workers", dict(workers=4, executor="process")),
    ):
        verdicts, wall, metrics = run_fleet(specs, factory, **kwargs)
        assert verdicts == base_verdicts, f"{label}: verdicts diverged"
        assert all(v.accepted for v in verdicts.values())
        speedups[label] = base_rps and (reports / wall) / base_rps
        rows.append((f"{label} ({metrics.executor})", wall,
                     reports / wall, speedups[label],
                     f"{metrics.replay_cache_hits}/{SESSIONS}"))
    lines = [f"Fleet verification throughput "
             f"({SESSIONS} sessions, {reports} reports)",
             f"{'configuration':38s} {'wall':>7s} {'rps':>7s} "
             f"{'speedup':>8s} {'cache':>9s}"]
    lines += [f"{label:38s} {wall:6.2f}s {rps:7.0f} {speedup:7.2f}x "
              f"{cache:>9s}"
              for label, wall, rps, speedup, cache in rows]
    save_table(results_dir, "fleet_throughput", "\n".join(lines))
    # the headline claim: 4 pool workers at >= 2x serial reports/sec
    assert speedups["fleet 4 workers + cache"] >= 2.0


def run_sharded_scale(specs, factory, shards, store_dir):
    """Stream every device's session through a sharded service.

    Devices are driven one after another (generate chain, submit,
    next) so a 100k-device run stays flat in memory; verdict and
    evidence byte-identity across shard counts cannot depend on the
    interleave anyway — that is what device-scoped nonces guarantee.
    Evidence fsync is off: this measures router + verify throughput,
    not the disk (the durability tests own that axis).
    """
    service = ShardedFleetService(
        shards=shards, store_dir=store_dir, fsync=False)
    reports = 0
    t0 = time.perf_counter()
    for spec in specs:
        challenge = service.open_session(
            spec.device_id, spec.profile, device_key(spec.device_id))
        for chunk in factory.chain(spec, challenge.nonce):
            service.submit(spec.device_id, chunk)
            reports += 1
    metrics = service.close()
    wall = time.perf_counter() - t0
    verdicts = dict(service.verdicts)
    heads = service.evidence_heads()
    return verdicts, heads, wall, reports, metrics


def test_fleet_sharded_scale(factory, results_dir, tmp_path):
    """The tentpole differential at scale: a 4-shard fleet must be
    byte-identical (verdicts *and* evidence heads) to the 1-shard
    reference over the same devices, and crash recovery must replay
    the whole evidence trail."""
    specs = build_fleet_specs(SCALE_DEVICES, workloads=("fibcall",),
                              attack_fraction=0.0, seed=SEED)
    runs = {}
    for shards in (1, 4):
        runs[shards] = run_sharded_scale(
            specs, factory, shards, tmp_path / f"scale-{shards}")
    verdicts_1, heads_1, _, _, _ = runs[1]
    verdicts_4, heads_4, wall_4, reports, metrics_4 = runs[4]
    assert verdicts_4 == verdicts_1
    assert heads_4 == heads_1
    assert len(verdicts_4) == SCALE_DEVICES
    assert all(v.accepted for v in verdicts_4.values())

    # recovery: reopen the 4-shard store and replay the evidence trail
    t0 = time.perf_counter()
    recovered = ShardedFleetService(
        shards=4, store_dir=tmp_path / "scale-4", fsync=False,
        resume=True)
    recovery_s = time.perf_counter() - t0
    assert recovered.recovered_verdicts == SCALE_DEVICES
    assert dict(recovered.verdicts) == verdicts_4
    recovered.close()

    lines = [f"Sharded fleet scale run ({SCALE_DEVICES} devices, "
             f"{reports} reports, evidence on, fsync off)",
             f"{'metric':34s} {'value':>12s}"]
    latencies = sorted(metrics_4.verify_latencies_s)
    p99 = latencies[int(0.99 * (len(latencies) - 1))] if latencies else 0.0
    for name, value in (
        ("4-shard wall", f"{wall_4:.2f}s"),
        ("4-shard sustained", f"{reports / wall_4:.0f} rps"),
        ("verify latency p99", f"{p99 * 1e3:.2f} ms"),
        ("evidence records", f"{metrics_4.evidence_records}"),
        ("evidence bytes", f"{metrics_4.evidence_bytes}"),
        ("recovery (replay all)", f"{recovery_s:.2f}s"),
        ("1-shard differential", "byte-identical"),
    ):
        lines.append(f"{name:34s} {value:>12s}")
    save_table(results_dir, "fleet_scale", "\n".join(lines))


def test_bench_session_verify_latency(benchmark, specs, factory):
    """Time one end-to-end session verification (no cache)."""
    spec = specs[0]
    service = FleetService(workers=0, replay_cache=False)
    challenge = service.open_session(
        spec.device_id, spec.profile, device_key(spec.device_id))
    chunks = factory.chain(spec, challenge.nonce)
    verdict = benchmark.pedantic(
        lambda: verify_session_chain(
            spec.device_id, spec.profile, device_key(spec.device_id),
            challenge.nonce, chunks),
        rounds=5, iterations=1)
    assert verdict.accepted
