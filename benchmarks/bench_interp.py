"""Interpreter vs. superblock-JIT throughput benchmark.

Runs every workload's unmodified (baseline) binary twice — pure
interpreter tier and superblock JIT tier — and reports simulated
cycles per wall-clock second for each, plus the speedup.  Both runs
must agree exactly on cycles, instructions, exit reason, and the full
ground-truth retire stream; any divergence is a hard failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_interp.py            # full
    PYTHONPATH=src python benchmarks/bench_interp.py --smoke    # CI gate

Full mode benchmarks all workloads (sustained throughput: one warm
MCU, reset+rerun for ``--min-time`` seconds per tier) and writes the
table to ``benchmarks/results/interp.txt``.  Smoke mode
(the CI gate) runs a three-workload subset with the differential check
on and fails (exit 1) if the JIT is less than ``--min-speedup`` (2x)
over the interpreter on any of them.

This file is intentionally a plain script, not a pytest bench: it has
no test functions, so collecting ``benchmarks/`` skips it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

from repro.asm import link

RESULTS = pathlib.Path(__file__).parent / "results" / "interp.txt"

SMOKE_WORKLOADS = ["prime", "crc32", "temperature"]

#: Interpreter throughput of the pre-JIT tree (cycles/sec, measured on
#: the CI container with this script's sustained-throughput loop; the
#: acceptance target is >= 5x these rates).
SEED_RATES = {
    "bitcount": 232_684, "bubblesort": 219_148, "crc32": 226_027,
    "dijkstra": 258_793, "fibcall": 270_174, "fir": 220_067,
    "geiger": 227_597, "gps": 210_866, "insertsort": 221_178,
    "matmult": 227_047, "prime": 250_073, "strsearch": 235_683,
    "syringe": 187_042, "temperature": 216_001, "ultrasonic": 220_983,
}


def _measure(image, workload, enable_jit: bool, min_time: float,
             trace: bool = False):
    """Sustained throughput: warm run, then reset+rerun for ``min_time``.

    The first (cold) run is returned for the differential check — it is
    the canonical execution, traced from reset.  The timed loop then
    measures steady-state simulated-cycles-per-second with the tracer
    detached, which is the figure the results table reports.
    """
    from repro.trace.groundtruth import GroundTruthTracer
    from repro.workloads.base import make_mcu

    mcu = make_mcu(image, workload, enable_jit=enable_jit)
    tracer = None
    if trace:
        tracer = GroundTruthTracer(record_all=True)
        mcu.cpu.retire_hooks.append(tracer.on_retire)
    first = mcu.run()
    pcs = list(tracer.pcs) if tracer else None
    if tracer:
        mcu.cpu.retire_hooks.remove(tracer.on_retire)
    total_cycles = 0
    elapsed = 0.0
    t0 = time.perf_counter()
    while elapsed < min_time:
        mcu.reset()
        total_cycles += mcu.run().cycles
        elapsed = time.perf_counter() - t0
    return total_cycles / elapsed, first, pcs


def bench_workload(name: str, min_time: float, trace: bool):
    from repro.workloads import load_workload

    workload = load_workload(name)
    image = link(workload.module())
    interp_rate, interp_run, interp_pcs = _measure(
        image, workload, False, min_time, trace)
    jit_rate, jit_run, jit_pcs = _measure(
        image, workload, True, min_time, trace)
    mismatches = []
    for field in ("cycles", "instructions", "exit_reason"):
        a, b = getattr(interp_run, field), getattr(jit_run, field)
        if a != b:
            mismatches.append(f"{field}: interp={a} jit={b}")
    if trace and interp_pcs != jit_pcs:
        mismatches.append("ground-truth retire streams differ")
    return {
        "workload": name,
        "interp": interp_rate,
        "jit": jit_rate,
        "speedup": jit_rate / interp_rate,
        "cycles": interp_run.cycles,
        "mismatches": mismatches,
    }


def format_rows(rows) -> str:
    lines = [
        "Interpreter vs. superblock JIT — simulated cycles per second",
        "(baseline binaries, sustained reset+rerun throughput; "
        "JIT default is ON)",
        "",
        f"{'workload':12s} {'cycles':>9s} {'interp c/s':>12s} "
        f"{'jit c/s':>12s} {'speedup':>8s} {'vs seed':>8s}",
        "-" * 66,
    ]
    for row in rows:
        seed = SEED_RATES.get(row["workload"])
        vs_seed = f"{row['jit'] / seed:6.1f}x" if seed else "      -"
        lines.append(
            f"{row['workload']:12s} {row['cycles']:>9d} "
            f"{row['interp']:>12,.0f} {row['jit']:>12,.0f} "
            f"{row['speedup']:>7.2f}x {vs_seed:>8s}")
    lines += [
        "",
        "'vs seed' compares the JIT rate against the pre-JIT tree's",
        "interpreter (SEED_RATES above, measured on the same host);",
        "the current interpreter column already includes this PR's",
        "dispatch-table/memory-cache satellites, so 'speedup' is the",
        "tier-vs-tier ratio within one tree.",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: subset of workloads, differential "
                             "check, fail under --min-speedup")
    parser.add_argument("--min-time", type=float, default=None,
                        metavar="SEC",
                        help="timed-loop length per tier per workload "
                             "(default: 0.4; smoke: 0.15)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="smoke-mode floor for jit/interp (default: 2)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset to benchmark")
    parser.add_argument("--out", default=None,
                        help="results file (default: results/interp.txt; "
                             "'-' to skip)")
    args = parser.parse_args(argv)

    from repro.workloads import WORKLOADS

    if args.workloads:
        names = args.workloads
    elif args.smoke:
        names = SMOKE_WORKLOADS
    else:
        names = sorted(WORKLOADS)
    min_time = args.min_time
    if min_time is None:
        min_time = 0.15 if args.smoke else 0.4

    rows = []
    failures = []
    for name in names:
        row = bench_workload(name, min_time, trace=True)
        rows.append(row)
        status = f"{row['speedup']:5.2f}x"
        if row["mismatches"]:
            failures.append(f"{name}: DIFFERENTIAL: "
                            + "; ".join(row["mismatches"]))
            status += "  DIFFERENTIAL MISMATCH"
        elif args.smoke and row["speedup"] < args.min_speedup:
            failures.append(
                f"{name}: speedup {row['speedup']:.2f}x "
                f"< floor {args.min_speedup:.1f}x")
            status += "  BELOW FLOOR"
        print(f"  {name:12s} {status}", file=sys.stderr)

    table = format_rows(rows)
    print(table)
    if not args.smoke and args.out != "-":
        out = pathlib.Path(args.out) if args.out else RESULTS
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(table + "\n")
        print(f"\nwrote {out}", file=sys.stderr)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
