"""Static-precision smoke: value-set branch devirtualization.

Compares the dataflow-enabled offline phase against the purely
syntactic classifier on workloads carrying compiler-idiom
register-materialized calls (``ldr/adr`` + ``blx``): trampolined-site
counts, end-to-end cycle and CFLog deltas, and code size. The numbers
land in ``benchmarks/results/static_precision.txt`` for EXPERIMENTS.md.
"""

from repro.core.classify import classify_module
from repro.core.pipeline import RapTrackConfig
from repro.eval.figures import format_table
from repro.eval.runner import run_method
from repro.workloads import load_workload
from conftest import save_table

#: mixed set: three workloads with provably-devirtualizable sites plus
#: two where the value analysis must find nothing to improve
BENCH_WORKLOADS = ["temperature", "gps", "syringe", "bitcount", "crc32"]
DEVIRT_WORKLOADS = {"temperature", "gps", "syringe"}


def test_static_precision(results_dir, artifact_cache):
    rows = []
    for name in BENCH_WORKLOADS:
        with_df = classify_module(load_workload(name).module())
        without = classify_module(load_workload(name).module(),
                                  enable_dataflow=False)
        on = run_method(name, "rap-track", cache=artifact_cache)
        off = run_method(name, "rap-track",
                         rap_config=RapTrackConfig(enable_dataflow=False),
                         cache=artifact_cache)
        assert on.verified and off.verified
        rows.append({
            "workload": name,
            "tramp_syntactic": len(without.tracked_sites()),
            "tramp_dataflow": len(with_df.tracked_sites()),
            "devirt_sites": len(with_df.devirtualized_sites()),
            "cycles_delta": on.cycles - off.cycles,
            "cflog_delta_B": on.cflog_bytes - off.cflog_bytes,
            "code_delta_B": on.code_size - off.code_size,
        })
    save_table(results_dir, "static_precision",
               format_table(rows,
                            "Static precision: value-set devirtualization"))

    # devirtualization must never cost anything...
    assert all(r["tramp_dataflow"] <= r["tramp_syntactic"] for r in rows)
    assert all(r["cycles_delta"] <= 0 for r in rows)
    assert all(r["cflog_delta_B"] <= 0 for r in rows)
    # ... and must strictly reduce trampolined sites (and the runtime
    # log) on the workloads whose indirect calls are provable
    reduced = [r for r in rows if r["tramp_dataflow"] < r["tramp_syntactic"]]
    assert len(reduced) >= 3
    for row in rows:
        if row["workload"] in DEVIRT_WORKLOADS:
            assert row["devirt_sites"] >= 1
            assert row["cflog_delta_B"] < 0
