"""Ablations of RAP-Track's design choices (DESIGN.md experiment index).

* loop optimization on/off — CFLog impact (section IV-D);
* fixed-loop elision on/off — CFLog impact (section IV-C);
* NOP activation padding — required for correctness when the MTB has
  activation latency (section V-C), removable when it does not;
* MTB watermark sweep — partial-report count vs buffer budget;
* shared vs per-site POP stubs — code size (figure 4).
"""

import pytest

from repro.asm import link
from repro.cfa.engine import EngineConfig
from repro.core.pipeline import RapTrackConfig, transform
from repro.eval.figures import format_table
from repro.eval.runner import run_method
from repro.trace.mtb import PACKET_BYTES
from conftest import save_table


def _log_bytes(name, rap_config=None, engine_config=None, cache=None):
    # each distinct RapTrackConfig gets its own offline-cache key, so
    # ablation sweeps amortize across benchmark sessions too
    run = run_method(name, "rap-track", config=engine_config,
                     rap_config=rap_config, cache=cache)
    return run


def test_ablation_loop_opt(results_dir, artifact_cache):
    rows = []
    for name in ("ultrasonic", "syringe", "geiger"):
        with_opt = _log_bytes(name, cache=artifact_cache)
        without = _log_bytes(name, RapTrackConfig(loop_opt=False),
                             cache=artifact_cache)
        rows.append({
            "workload": name,
            "with_loop_opt_B": with_opt.cflog_bytes,
            "without_B": without.cflog_bytes,
            "reduction": without.cflog_bytes / max(1, with_opt.cflog_bytes),
        })
    save_table(results_dir, "ablation_loop_opt",
               format_table(rows, "Ablation: loop-condition optimization"))
    assert all(r["without_B"] >= r["with_loop_opt_B"] for r in rows)
    assert any(r["reduction"] > 3 for r in rows)


def test_ablation_fixed_loops(results_dir, artifact_cache):
    rows = []
    for name in ("crc32", "matmult", "geiger"):
        with_fixed = _log_bytes(name, cache=artifact_cache)
        without = _log_bytes(name, RapTrackConfig(fixed_loops=False),
                             cache=artifact_cache)
        rows.append({
            "workload": name,
            "with_fixed_elision_B": with_fixed.cflog_bytes,
            "without_B": without.cflog_bytes,
        })
    save_table(results_dir, "ablation_fixed_loops",
               format_table(rows, "Ablation: fixed-loop elision"))
    assert all(r["without_B"] >= r["with_fixed_elision_B"] for r in rows)


def test_ablation_nop_padding_required_with_latency(results_dir):
    """Without the NOP padding, an MTB with activation latency misses
    the packet of every stub. For taken-flavor conditionals the
    *absence* of a record is evidence (meaning: not taken), so the
    replay either desyncs or silently reconstructs the wrong path —
    both unacceptable, which is why the paper adds the NOPs."""
    from repro.asm import link
    from repro.cfa.engine import RapTrackEngine
    from repro.cfa.verifier import Verifier
    from repro.trace.groundtruth import GroundTruthTracer
    from repro.tz.keystore import KeyStore
    from repro.workloads import load_workload
    from repro.workloads.base import make_mcu

    workload = load_workload("temperature")
    result = transform(workload.module(), RapTrackConfig(nop_padding=False))
    image = link(result.module)
    bound = result.rmap.bind(image)
    mcu = make_mcu(image, workload)
    tracer = GroundTruthTracer(record_all=True)
    mcu.cpu.retire_hooks.append(tracer.on_retire)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound,
                            EngineConfig(activation_latency=1))
    attestation = engine.attest(b"x")
    assert attestation.mtb_packets == 0  # every packet lost to warmup
    outcome = Verifier(image, bound, keystore.attestation_key).verify(
        attestation, b"x")
    lo, hi = image.section_ranges["text"]
    ground_truth = [pc for pc in tracer.pcs if lo <= pc < hi]
    assert (not outcome.lossless) or outcome.path != ground_truth


def test_ablation_nop_padding_removable_without_latency():
    """With an idealised zero-latency MTB the padding can be dropped
    and verification still succeeds (the padding exists only for the
    hardware's activation window)."""
    run = run_method("temperature", "rap-track",
                     config=EngineConfig(activation_latency=0),
                     rap_config=RapTrackConfig(nop_padding=False))
    assert run.verified


def test_ablation_nop_padding_code_size(results_dir):
    rows = []
    for name in ("gps", "prime", "bubblesort"):
        from repro.workloads import load_workload

        module = load_workload(name).module()
        padded = link(transform(module, RapTrackConfig()).module)
        module = load_workload(name).module()
        bare = link(transform(
            module, RapTrackConfig(nop_padding=False)).module)
        rows.append({
            "workload": name,
            "padded_B": padded.code_size(),
            "unpadded_B": bare.code_size(),
        })
    save_table(results_dir, "ablation_nop_padding",
               format_table(rows, "Ablation: MTBAR NOP activation padding"))
    assert all(r["padded_B"] > r["unpadded_B"] for r in rows)


def test_ablation_watermark_sweep(results_dir):
    rows = []
    for packets in (16, 64, 512):
        run = run_method(
            "bubblesort", "rap-track",
            config=EngineConfig(watermark=packets * PACKET_BYTES,
                                mtb_buffer_size=packets * PACKET_BYTES))
        rows.append({
            "watermark_packets": packets,
            "partial_reports": run.partial_reports,
            "cflog_B": run.cflog_bytes,
        })
    save_table(results_dir, "ablation_watermark",
               format_table(rows, "Ablation: MTB_FLOW watermark sweep"))
    counts = [r["partial_reports"] for r in rows]
    assert counts == sorted(counts, reverse=True)
    assert len({r["cflog_B"] for r in rows}) == 1  # content invariant


def test_ablation_shared_pop_stub(results_dir):
    from repro.workloads import load_workload

    rows = []
    for name in ("fibcall", "gps"):
        shared = link(transform(load_workload(name).module(),
                                RapTrackConfig(share_pop_stub=True)).module)
        private = link(transform(load_workload(name).module(),
                                 RapTrackConfig(share_pop_stub=False)).module)
        rows.append({
            "workload": name,
            "shared_stub_B": shared.code_size(),
            "per_site_stub_B": private.code_size(),
        })
    save_table(results_dir, "ablation_pop_stub",
               format_table(rows, "Ablation: shared MTBAR_POP_ADDR stub"))
    assert all(r["shared_stub_B"] <= r["per_site_stub_B"] for r in rows)


def test_bench_transform_all_workloads(benchmark):
    """Time the complete offline phase over the whole suite."""
    from repro.workloads import WORKLOADS, load_workload

    def offline_all():
        return [transform(load_workload(n).module()) for n in WORKLOADS]

    results = benchmark.pedantic(offline_all, rounds=2, iterations=1)
    assert len(results) == len(WORKLOADS)
