"""Benchmark-session plumbing.

A single session-scoped collection runs every workload under every
method (with full lossless verification) and caches the metrics; the
per-figure benches assert the paper's shape bands against it, print the
reproduced table, and time a representative operation with
pytest-benchmark. Tables are also written to ``benchmarks/results/``
for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.figures import collect_all

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def all_runs():
    """Every workload x every method, verified, collected once."""
    return collect_all()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
