"""Benchmark-session plumbing.

A single session-scoped collection runs every workload under every
method (with full lossless verification) and caches the metrics; the
per-figure benches assert the paper's shape bands against it, print the
reproduced table, and time a representative operation with
pytest-benchmark. Tables are also written to ``benchmarks/results/``
for EXPERIMENTS.md.

The collection goes through the parallel evaluation subsystem
(``repro.eval.parallel``): set ``REPRO_BENCH_JOBS=N`` to fan the grid
out across worker processes, and ``REPRO_CACHE_DIR`` to relocate the
offline-artifact cache that repeated benchmark sessions reuse.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.eval.cache import ArtifactCache, default_cache_dir
from repro.eval.parallel import evaluate_grid

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_cache():
    """Offline-phase cache shared by every bench in the session."""
    return ArtifactCache(default_cache_dir())


@pytest.fixture(scope="session")
def all_runs(artifact_cache):
    """Every workload x every method, verified, collected once."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    from repro.eval.figures import EVAL_WORKLOADS

    runs, _ = evaluate_grid(list(EVAL_WORKLOADS), jobs=jobs,
                            cache=artifact_cache)
    return runs


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
