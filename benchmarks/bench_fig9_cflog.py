"""Figure 9 reproduction: CFLog sizes per method.

Shape targets from the paper: RAP-Track's log is always far below the
naive MTB's; loop optimization makes ultrasonic/syringe logs tiny; on
prime and gps RAP-Track and TRACES log the *same events* (sizes differ
only by the 8-byte-packet vs 4-byte-entry wire format).
"""

from repro.core.pipeline import transform
from repro.eval.figures import fig9_cflog, format_table
from repro.workloads import load_workload
from conftest import save_table


def test_fig9_table_and_bands(all_runs, results_dir):
    rows = fig9_cflog(all_runs)
    save_table(results_dir, "fig9_cflog",
               format_table(rows, "Figure 9: CFLog size (bytes)"))
    for row in rows:
        assert row["rap_track_B"] <= row["naive_mtb_B"], row["workload"]


def test_fig9_rap_and_traces_log_same_events(all_runs):
    for name, methods in all_runs.items():
        assert (methods["rap-track"].cflog_records
                == methods["traces"].cflog_records), name


def test_fig9_loop_opt_showcases(all_runs):
    # the paper highlights ultrasonic and syringe (section V-B)
    for name in ("ultrasonic", "syringe"):
        naive = all_runs[name]["naive-mtb"].cflog_bytes
        rap = all_runs[name]["rap-track"].cflog_bytes
        assert naive / rap > 20, name


def test_fig9_parity_workloads(all_runs):
    # prime/gps: similar sized logs between RAP-Track and TRACES
    for name in ("prime", "gps"):
        rap = all_runs[name]["rap-track"].cflog_bytes
        traces = all_runs[name]["traces"].cflog_bytes
        assert rap == 2 * traces, name  # same records, 8B vs 4B entries


def test_bench_verifier_replay(benchmark, all_runs):
    """Time the Verifier's lossless replay on the gps log."""
    from repro.asm import link
    from repro.cfa.engine import RapTrackEngine
    from repro.cfa.verifier import Verifier
    from repro.tz.keystore import KeyStore
    from repro.workloads.base import make_mcu

    workload = load_workload("gps")
    result = transform(workload.module())
    image = link(result.module)
    bound = result.rmap.bind(image)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound)
    attestation = engine.attest(b"bench")
    verifier = Verifier(image, bound, keystore.attestation_key)

    outcome = benchmark.pedantic(
        lambda: verifier.verify(attestation, b"bench"),
        rounds=5, iterations=1)
    assert outcome.ok
