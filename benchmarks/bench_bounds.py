"""Static path-bound tightness: certified worst case vs honest maxima.

For every workload under every bounded method the `BNDS1` certificate
is built (and its signature verified end to end), one honest attested
run is measured, and the observed CFLog records/bytes and shadow-stack
high-water mark are compared against the certified bounds. The table
lands in ``benchmarks/results/bounds.txt`` for EXPERIMENTS.md.

The assertions are the analyzer's soundness gate in CI: an observation
above its bound means the static analysis under-approximated a real
execution, which would make the fleet's admission screen reject honest
devices. Tightness (observed/bound) is reported, not asserted — the
bounds are worst cases over *all* paths, the honest run drives one.
"""

from repro.baselines.naive_mtb import NaiveMtbEngine
from repro.baselines.traces import TracesEngine
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import NaiveVerifier, Verifier
from repro.core.analysis import certify_workload, screen_records
from repro.core.analysis.bounds import BOUNDED_METHODS
from repro.eval.figures import format_table
from repro.eval.runner import prepare
from repro.tz.keystore import KeyStore
from repro.workloads import WORKLOADS, load_workload
from repro.workloads.base import make_mcu
from conftest import save_table


def observe_honest_run(name, method, cache):
    """One attested execution: (records, bytes, shadow high-water)."""
    workload = load_workload(name)
    image, bound = prepare(workload, method, cache=cache)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()
    config = EngineConfig()
    if method == "naive-mtb":
        engine = NaiveMtbEngine(mcu, keystore, config)
        verifier = NaiveVerifier(image, keystore.attestation_key)
    elif method == "rap-track":
        engine = RapTrackEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    else:
        engine = TracesEngine(mcu, keystore, bound, config)
        verifier = Verifier(image, bound, keystore.attestation_key)
    result = engine.attest(b"bench-bounds")
    outcome = verifier.verify(result, b"bench-bounds")
    assert outcome.ok, f"{name}/{method} honest run failed verification"
    records = [r for rep in result.reports for r in rep.cflog.records]
    return records, sum(r.size_bytes for r in records), \
        outcome.max_shadow_depth


def fmt_bound(value):
    return "unbounded" if value is None else value


def test_bound_tightness(results_dir, artifact_cache):
    rows = []
    bounded_cells = violations = 0
    for name in sorted(WORKLOADS):
        for method in BOUNDED_METHODS:
            cert = certify_workload(name, method, cache=artifact_cache)
            records, obs_bytes, obs_depth = observe_honest_run(
                name, method, artifact_cache)
            # the admission screen must wave every honest chain through
            assert screen_records(cert, records) is None, (name, method)
            if cert.max_log_records is not None:
                bounded_cells += 1
                if len(records) > cert.max_log_records:
                    violations += 1
            if cert.max_stack_depth is not None \
                    and obs_depth > cert.max_stack_depth:
                violations += 1
            tightness = ""
            if cert.max_log_records:
                tightness = f"{len(records) / cert.max_log_records:.2f}"
            rows.append({
                "workload": name,
                "method": method,
                "cert_depth": fmt_bound(cert.max_stack_depth),
                "obs_depth": obs_depth,
                "cert_records": fmt_bound(cert.max_log_records),
                "obs_records": len(records),
                "cert_bytes": fmt_bound(cert.max_log_bytes),
                "obs_bytes": obs_bytes,
                "tightness": tightness,
            })
    save_table(results_dir, "bounds",
               format_table(rows, "Static path bounds vs honest maxima"))

    # soundness: zero honest observations above their certified bound
    assert violations == 0
    # the certification is not vacuous: a solid block of the matrix is
    # finitely bounded (loop-optimized and straight-line workloads)
    assert bounded_cells >= 15
