"""SpecCFA-style sub-path speculation: CFLog compression (extension).

The paper cites sub-path speculation as the answer to the CFLog
transmission bottleneck (section V-B, [57]). Measures compression
ratios over the suite with a per-workload mined dictionary.
"""

from repro.asm import link
from repro.cfa.engine import RapTrackEngine
from repro.cfa.speccfa import (
    SpeculativeVerifier,
    compress,
    mine_subpaths,
    speculate_result,
)
from repro.cfa.verifier import Verifier
from repro.core.pipeline import transform
from repro.eval.figures import format_table
from repro.tz.keystore import KeyStore
from repro.workloads import load_workload
from repro.workloads.base import make_mcu
from conftest import save_table

LOOPY = ("bubblesort", "prime", "geiger", "fibcall", "gps", "insertsort")


def _rap_setup(workload, keystore):
    offline = transform(workload.module())
    image = link(offline.module)
    bound = offline.rmap.bind(image)
    mcu = make_mcu(image, workload)
    engine = RapTrackEngine(mcu, keystore, bound)
    verifier = Verifier(image, bound, keystore.attestation_key)
    return engine, verifier


def _speculated(name, keystore):
    workload = load_workload(name)
    engine, verifier = _rap_setup(workload, keystore)
    profile = engine.attest(b"profiling")
    dictionary = mine_subpaths(profile.cflog.records)
    attested = engine.attest(b"real")
    compressed = speculate_result(attested, dictionary,
                                  keystore.attestation_key)
    spec = SpeculativeVerifier(verifier, dictionary)
    outcome = spec.verify(compressed, b"real")
    assert outcome.authenticated and outcome.lossless
    return attested, compressed, dictionary


def test_speccfa_compression_table(results_dir):
    keystore = KeyStore.provision()
    rows = []
    for name in LOOPY:
        plain, compressed, dictionary = _speculated(name, keystore)
        rows.append({
            "workload": name,
            "plain_B": plain.cflog_bytes,
            "speculated_B": compressed.cflog_bytes,
            "ratio": (plain.cflog_bytes / compressed.cflog_bytes
                      if compressed.cflog_bytes else float("inf")),
            "subpaths": len(dictionary),
        })
    save_table(results_dir, "speccfa",
               format_table(rows, "Extension: SpecCFA sub-path speculation"))
    assert all(r["speculated_B"] <= r["plain_B"] for r in rows)
    assert any(r["ratio"] > 3 for r in rows)


def test_bench_compress(benchmark):
    keystore = KeyStore.provision()
    workload = load_workload("bubblesort")
    engine, _ = _rap_setup(workload, keystore)
    records = engine.attest(b"profiling").cflog.records
    dictionary = mine_subpaths(records)
    compressed = benchmark.pedantic(
        lambda: compress(records, dictionary), rounds=5, iterations=1)
    assert len(compressed) < len(records)
