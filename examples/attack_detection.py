#!/usr/bin/env python3
"""Attack detection demo: a ROP exploit caught by RAP-Track.

A deliberately vulnerable firmware copies UART input into a fixed stack
buffer with no bounds check. The attack feed overflows the buffer and
overwrites the saved return address with the address of a privileged
maintenance routine. The exploit *succeeds on the device* — but the
return executes through the MTBAR pop stub, so the MTB logs the
hijacked destination, and the Verifier's shadow call stack flags it.
This is the CFA value proposition (paper sections II-D, IV-F): remote,
authenticated *evidence* of the runtime attack.
"""

from repro.asm import link
from repro.cfa.engine import RapTrackEngine
from repro.cfa.verifier import Verifier
from repro.core.pipeline import transform
from repro.tz.keystore import KeyStore
from repro.workloads import vulnerable
from repro.workloads.base import make_mcu


def run_scenario(attack: bool) -> None:
    label = "ATTACK" if attack else "BENIGN"
    workload = vulnerable.make()
    offline = transform(workload.module())
    image = link(offline.module)
    bound = offline.rmap.bind(image)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()

    feed = (vulnerable.attack_feed(image) if attack
            else vulnerable.benign_feed())
    mcu.mmio.device("uart").set_feed(feed)

    engine = RapTrackEngine(mcu, keystore, bound)
    result = engine.attest(b"attack-demo-challenge")

    gpio = mcu.mmio.device("gpio")
    status = gpio.latches[0]
    print(f"--- {label} run ---")
    print(f"  device status word: {status:#x} "
          f"({'UNLOCKED - exploit fired!' if status == vulnerable.STATUS_UNLOCKED else 'normal'})")

    verifier = Verifier(image, bound, keystore.attestation_key)
    outcome = verifier.verify(result, b"attack-demo-challenge")
    print(f"  report authenticated: {outcome.authenticated}")
    print(f"  replay lossless:      {outcome.lossless}")
    if outcome.violations:
        print("  violations (attack evidence):")
        for violation in outcome.violations:
            print(f"    [{violation.kind}] at {violation.address:#010x}: "
                  f"{violation.detail}")
    else:
        print("  violations: none")
    print(f"  verdict: {'ACCEPTED' if outcome.ok else 'REJECTED'}\n")

    if attack:
        assert not outcome.ok
        assert any(v.kind == "rop-return" for v in outcome.violations)
    else:
        assert outcome.ok


def main() -> None:
    run_scenario(attack=False)
    run_scenario(attack=True)
    print("The attack ran on the device, but the signed CFLog is "
          "tamper-proof:\nthe Verifier sees exactly where control flow "
          "was hijacked.")


if __name__ == "__main__":
    main()
