#!/usr/bin/env python3
"""Quickstart: attest one firmware with RAP-Track, end to end.

Walks the full paper pipeline on the ultrasonic-ranger workload:

1. offline phase — classify branches, build MTBDR/MTBAR, link;
2. execution phase — the Secure-World engine locks and measures the
   binary, programs DWT/MTB, runs the app, signs the report;
3. verification — the remote Verifier authenticates the report chain
   and losslessly reconstructs the complete control flow path.
"""

from repro import attest_rap_track, load_workload, transform
from repro.asm import link


def main() -> None:
    name = "ultrasonic"
    workload = load_workload(name)
    print(f"Workload: {name} — {workload.description}\n")

    # --- offline phase (shown explicitly; attest_rap_track wraps it) ---
    offline = transform(workload.module())
    image = link(offline.module)
    print("Offline phase (static analysis + rewriting):")
    for cls, count in sorted(offline.site_counts.items()):
        print(f"  {cls:24s} {count}")
    print(f"  MTBDR (text) size: {image.section_size('text')} B")
    print(f"  MTBAR stub size:   {image.section_size('mtbar')} B\n")

    # --- execution + verification ---
    outcome = attest_rap_track(name)
    result = outcome.result
    print("Execution phase (on the simulated Cortex-M33-class MCU):")
    print(f"  cycles:             {result.cycles}")
    print(f"  instructions:       {result.instructions}")
    print(f"  MTB packets:        {result.mtb_packets}")
    print(f"  secure-world calls: {result.gateway_calls} "
          f"(loop conditions only)")
    print(f"  CFLog:              {len(result.cflog)} records, "
          f"{result.cflog_bytes} bytes")
    print(f"  reports:            {len(result.reports)} "
          f"({result.partial_report_count} partial)\n")

    verification = outcome.verification
    print("Verifier assessment:")
    print(f"  authenticated: {verification.authenticated}")
    print(f"  lossless:      {verification.lossless} "
          f"({len(verification.path)} instructions reconstructed)")
    print(f"  violations:    {len(verification.violations)}")
    print(f"  => attestation {'ACCEPTED' if verification.ok else 'REJECTED'}")

    assert verification.ok
    print("\nQuickstart completed successfully.")


if __name__ == "__main__":
    main()
