#!/usr/bin/env python3
"""Operational demo: streamed partial reports + sub-path speculation.

Models a constrained deployment end to end: the Prover's MTB is given a
small watermark, so the CFLog streams to the Verifier as a chain of
signed partial reports over the wire codec; the Verifier authenticates
each partial the moment it arrives and replays once the final report
lands. A second pass adds SpecCFA-style sub-path speculation mined from
a profiling run, shrinking the bytes on the wire.
"""

from repro.asm import link
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.speccfa import (
    SpeculativeVerifier,
    mine_subpaths,
    speculate_result,
)
from repro.cfa.streaming import StreamingVerifier
from repro.cfa.verifier import Verifier
from repro.cfa.wire import encode_report
from repro.core.pipeline import transform
from repro.trace.mtb import PACKET_BYTES
from repro.tz.keystore import KeyStore
from repro.workloads import load_workload
from repro.workloads.base import make_mcu


def build(name, watermark):
    workload = load_workload(name)
    offline = transform(workload.module())
    image = link(offline.module)
    bound = offline.rmap.bind(image)
    mcu = make_mcu(image, workload)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound,
                            EngineConfig(watermark=watermark))
    verifier = Verifier(image, bound, keystore.attestation_key)
    return engine, verifier, keystore


def main() -> None:
    name = "bubblesort"
    engine, verifier, keystore = build(name, watermark=64 * PACKET_BYTES)

    print(f"Streaming attestation of {name!r} "
          f"(watermark {64 * PACKET_BYTES} B):")
    result = engine.attest(b"telemetry-chal")
    stream = StreamingVerifier(verifier, b"telemetry-chal")
    total_wire = 0
    for report in result.reports:
        wire = encode_report(report)
        total_wire += len(wire)
        stream.feed_bytes(wire)
        kind = "final" if report.final else "partial"
        print(f"  received {kind} report #{report.seq}: "
              f"{len(report.cflog)} records, {len(wire)} wire bytes "
              f"-> accepted")
    outcome = stream.finish()
    print(f"  replay: lossless={outcome.lossless}, "
          f"{len(outcome.path)} instructions reconstructed")
    print(f"  total transmitted: {total_wire} B\n")

    print("Second pass with SpecCFA sub-path speculation:")
    dictionary = mine_subpaths(result.cflog.records)
    print(f"  mined {len(dictionary)} speculated sub-paths from profiling")
    attested = engine.attest(b"telemetry-chal-2")
    compressed = speculate_result(attested, dictionary,
                                  keystore.attestation_key)
    spec = SpeculativeVerifier(verifier, dictionary)
    outcome = spec.verify(compressed, b"telemetry-chal-2")
    print(f"  CFLog: {attested.cflog_bytes} B -> "
          f"{compressed.cflog_bytes} B on the wire "
          f"({attested.cflog_bytes / max(1, compressed.cflog_bytes):.1f}x)")
    print(f"  verification: authenticated={outcome.authenticated}, "
          f"lossless={outcome.lossless}")
    assert outcome.authenticated and outcome.lossless


if __name__ == "__main__":
    main()
