#!/usr/bin/env python3
"""Bring your own firmware: attest custom assembly with RAP-Track.

Shows the library as a downstream user would adopt it: write a small
firmware in the assembly dialect, run the offline phase, inspect the
rewritten layout, attest, and stream partial reports through a small
MTB watermark.
"""

from repro.asm import assemble, link
from repro.cfa.engine import EngineConfig, RapTrackEngine
from repro.cfa.verifier import Verifier
from repro.core.pipeline import transform
from repro.machine.mcu import MCU
from repro.trace.mtb import PACKET_BYTES
from repro.tz.keystore import KeyStore

FIRMWARE = """
; A tiny duty-cycle controller: compute an on-time from a sensor
; word, then pulse an actuator that many times.
.equ GPIO, 0x40000500

.entry main
main:
    push {r4, r5, lr}
    mov r4, #0                ; pulse counter

    ; derive a duty value (stand-in for a sensor read)
    mov32 r0, #0x1234
    and r5, r0, #31
    add r5, r5, #1

    ; data-dependent pulse loop (simple: loop-opt candidate)
duty_loop:
    add r4, r4, #1
    sub r5, r5, #1
    cmp r5, #0
    bgt duty_loop

    ; classify the result (if/else chain)
    cmp r4, #16
    blt low_duty
    bl report_high
    b finish
low_duty:
    bl report_low
finish:
    pop {r4, r5, pc}

report_high:
    push {lr}
    mov r0, #2
    pop {pc}

report_low:
    push {lr}
    mov r0, #1
    pop {pc}
"""


def main() -> None:
    module = assemble(FIRMWARE)
    offline = transform(module)
    image = link(offline.module)
    bound = offline.rmap.bind(image)

    print("Rewritten MTBDR (text) section:")
    print(image.disassemble("text"))
    print("\nMTBAR trampoline stubs:")
    print(image.disassemble("mtbar"))

    # a deliberately tiny watermark to demonstrate partial reports
    config = EngineConfig(watermark=4 * PACKET_BYTES)
    mcu = MCU(image)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound, config)
    result = engine.attest(b"custom-firmware-challenge")

    print(f"\nAttestation: {result.cycles} cycles, "
          f"{len(result.reports)} reports "
          f"({result.partial_report_count} partial under the "
          f"{config.watermark}-byte watermark)")
    for report in result.reports:
        kind = "final  " if report.final else "partial"
        print(f"  report #{report.seq} ({kind}): "
              f"{len(report.cflog)} records, {report.cflog.size_bytes} B, "
              f"mac={report.mac.hex()[:16]}…")

    verifier = Verifier(image, bound, keystore.attestation_key)
    outcome = verifier.verify(result, b"custom-firmware-challenge")
    print(f"\nVerification: authenticated={outcome.authenticated} "
          f"lossless={outcome.lossless} violations={len(outcome.violations)}")
    assert outcome.ok
    print(f"Reconstructed the full {len(outcome.path)}-instruction path.")


if __name__ == "__main__":
    main()
