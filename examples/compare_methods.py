#!/usr/bin/env python3
"""Reproduce the paper's evaluation tables on the whole workload suite.

Runs every workload under all four systems — unmodified baseline,
naive MTB tracing, RAP-Track, and the TRACES-style instrumentation
baseline — with full lossless verification, then prints the figures'
data (figures 1, 8, 9, 10 and the partial-report analysis).

This is the same machinery the benchmark harness uses; expect a few
seconds of simulation.
"""

from repro.eval.figures import (
    collect_all,
    fig1_motivation,
    fig8_runtime,
    fig9_cflog,
    fig10_code_size,
    format_table,
    partial_report_table,
)


def main() -> None:
    print("Running all workloads under all methods "
          "(every run is verified losslessly)...\n")
    runs = collect_all()

    print(format_table(fig1_motivation(runs),
                       "Figure 1 — motivation: naive MTB vs "
                       "instrumentation-based CFA"))
    print()
    print(format_table(fig8_runtime(runs),
                       "Figure 8 — runtime (CPU cycles)"))
    print()
    print(format_table(fig9_cflog(runs),
                       "Figure 9 — CFLog size (bytes)"))
    print()
    print(format_table(fig10_code_size(runs),
                       "Figure 10 — program memory (bytes)"))
    print()
    print(format_table(partial_report_table(runs),
                       "Section V-B — partial reports at the 4 KB MTB limit"))

    rap = [r["rap_over_naive_pct"] for r in fig8_runtime(runs)]
    traces = [r["traces_over_base_pct"] for r in fig8_runtime(runs)]
    print(f"\nRAP-Track runtime overhead:  {min(rap):.1f}% .. {max(rap):.1f}%"
          f"   (paper: 2%..62%)")
    print(f"TRACES runtime overhead:     {min(traces):.1f}% .. "
          f"{max(traces):.1f}%   (paper: 7%..1309%)")


if __name__ == "__main__":
    main()
