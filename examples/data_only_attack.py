#!/usr/bin/env python3
"""Data-only (control-flow bending) attack visibility.

A ROP attack breaks the CFI policy and lights up as a ``Violation``
(see ``attack_detection.py``). This demo shows the subtler case the
paper's lossless-CFA argument targets (section II-D): the attacker
corrupts only *data* — here, a syringe-pump command stream — so the
device follows perfectly legal CFG edges and every CFI check passes.
Because RAP-Track's evidence is lossless, the Verifier still sees the
behavioural change by auditing the reconstructed path against a
reference profile.
"""

from repro.asm import link
from repro.cfa.audit import audit_paths, conditional_outcome_profile
from repro.cfa.engine import RapTrackEngine
from repro.cfa.verifier import Verifier
from repro.core.pipeline import transform
from repro.tz.keystore import KeyStore
from repro.workloads import syringe
from repro.workloads.base import make_mcu


def attest_with_feed(feed_bytes):
    workload = syringe.make()
    offline = transform(workload.module())
    image = link(offline.module)
    bound = offline.rmap.bind(image)
    mcu = make_mcu(image, workload)
    mcu.mmio.device("uart").set_feed(feed_bytes)
    keystore = KeyStore.provision()
    engine = RapTrackEngine(mcu, keystore, bound)
    result = engine.attest(b"bend-demo")
    outcome = Verifier(image, bound, keystore.attestation_key).verify(
        result, b"bend-demo")
    return image, bound, mcu, outcome


def main() -> None:
    # the prescribed therapy: dispense 2 units, then 3 units
    prescribed = bytes([1, 2, 1, 3])
    # the attacker rewrites the dose commands: withdraw instead!
    tampered = bytes([2, 2, 2, 3])

    image, bound, mcu_ok, golden = attest_with_feed(prescribed)
    print("reference run (prescribed doses):")
    print(f"  pump position: {mcu_ok.mmio.device('stepper').position}")
    print(f"  verification:  ok={golden.ok}, "
          f"violations={len(golden.violations)}")

    image_b, bound_b, mcu_bad, bent = attest_with_feed(tampered)
    print("\ntampered run (attacker flipped the dose commands):")
    print(f"  pump position: {mcu_bad.mmio.device('stepper').position} "
          f"(withdrew instead of dispensing!)")
    print(f"  verification:  ok={bent.ok}, "
          f"violations={len(bent.violations)} "
          f"<- every CFI check passes: the path is 'legal'")

    report = audit_paths(golden.path, bent.path, image=image_b)
    print("\nlossless-path audit against the reference profile:")
    print("  " + report.summary().replace("\n", "\n  "))

    ref_profile = conditional_outcome_profile(golden.path, bound)
    bent_profile = conditional_outcome_profile(bent.path, bound_b)
    shifted = [s for s in ref_profile
               if ref_profile[s] != bent_profile.get(s)]
    print(f"\nconditional sites whose outcome frequency shifted: "
          f"{len(shifted)}")
    for site in shifted[:4]:
        print(f"  {site:#010x}: taken/not-taken "
              f"{ref_profile[site]} -> {bent_profile.get(site)}")

    assert not report.identical
    print("\nThe attack never violated the CFG — but the attested path "
          "exposes it.")


if __name__ == "__main__":
    main()
